//! Site-node configuration.

use qbc_core::{FaultyMode, ProtocolKind, SiteVotes, TxnId};
use qbc_obs::Obs;
use qbc_simnet::{Duration, SiteId};
use qbc_votes::Catalog;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Which WAL implementation a site runs on.
///
/// The deterministic simulator keeps the in-memory model (same
/// durability contract, zero I/O, bit-reproducible schedules); durable
/// deployments — and the crash/restart tests — pick the file-backed
/// log, whose force is a real `fsync`. See `docs/wal-format.md` for
/// the on-disk format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum WalBackendConfig {
    /// In-memory durability model (`qbc_storage::Wal`): the default,
    /// and the seed behaviour.
    #[default]
    Memory,
    /// File-backed log (`qbc_storage::FileWal`) rooted at `dir`.
    File {
        /// Directory for this site's segment files (created if absent;
        /// reopening a non-empty directory recovers the existing log).
        dir: PathBuf,
        /// Segment roll threshold in bytes.
        segment_bytes: u64,
        /// `fsync` every force. Disable only in tests that crash
        /// processes logically, never the machine.
        fsync: bool,
    },
}

/// Static configuration of one database site.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This site's id.
    pub site: SiteId,
    /// The shared replication catalog (copy placement, `r`/`w` quorums).
    pub catalog: Catalog,
    /// Site-vote parameters, required when any transaction runs
    /// [`ProtocolKind::SkeenQuorum`].
    pub site_votes: Option<SiteVotes>,
    /// The longest end-to-end network delay `T`; all protocol timeouts
    /// are fixed multiples of it (`2T` collection windows, `3T`
    /// watchdog).
    pub t_bound: Duration,
    /// Transactions this site votes *no* on (models a site whose I/O
    /// subsystem cannot perform the update).
    pub vote_no_on: BTreeSet<TxnId>,
    /// Example 3 fault injection: answer prepares across the PC/PA wall.
    pub faulty: FaultyMode,
    /// Re-run the termination protocol after declaring a transaction
    /// blocked (re-entrancy; the retry fires after
    /// [`NodeConfig::blocked_retry`]).
    pub retry_blocked: bool,
    /// Delay before a blocked transaction's termination is retried.
    pub blocked_retry: Duration,
    /// Maximum termination rounds this site will *initiate* per
    /// transaction. Unlimited by default (the paper's re-entrant loop);
    /// Monte-Carlo sweeps cap it so permanently blocked runs settle
    /// instead of churning elections forever.
    pub max_termination_rounds: u64,
    /// Group-commit batching: engine log records are staged and forced
    /// in one flush per batch instead of one flush each. Messages and
    /// decision applications that depend on a staged record are withheld
    /// until its batch is forced, so the durability contract (logged
    /// before told) is preserved exactly.
    pub group_commit: bool,
    /// How long the first staged record of a batch waits for companions
    /// before the batch is forced.
    pub group_commit_window: Duration,
    /// Size the batch window from the observed log-device backlog
    /// instead of the static constant: while the device is busy the
    /// window stretches toward [`NodeConfig::group_commit_window`]
    /// (batching is free — no force could start anyway), and on an
    /// idle device it collapses to one tick so light load is not taxed
    /// a full window of latency per decision. Off by default (the
    /// static-window behaviour, and the golden digests, are unchanged).
    pub adaptive_commit_window: bool,
    /// Force the batch early once this many records are staged.
    pub group_commit_max_batch: usize,
    /// Simulated latency of one WAL force. The log device is serial:
    /// a force issued while another is in flight starts only after it
    /// completes — the contention that makes group commit pay at high
    /// concurrency. Zero (the default) keeps the seed's instant-force
    /// model and changes nothing.
    pub force_latency: Duration,
    /// Retire decided per-transaction state this long after the
    /// decision (the `DECIDED` re-announce window): the heavy
    /// engine/spec entry is replaced by a compact outcome record, so
    /// the transaction table stays bounded on long-running sites while
    /// stragglers still get their answer. `None` (the default) keeps
    /// every entry forever (the seed behaviour).
    pub retire_after: Option<Duration>,
    /// Age *retired* outcome records out entirely this long after
    /// retirement, so the retired maps — and the checkpoint records
    /// that serialize them — are O(live + horizon) instead of
    /// O(history). Must comfortably exceed every straggler window
    /// (watchdog, blocked-retry, re-announce): a straggler asking after
    /// the horizon finds no answer and escalates to termination, which
    /// then also finds nothing — so pick a horizon multiple times the
    /// widest retry period. Only meaningful with
    /// [`NodeConfig::retire_after`]; `None` (the default) keeps retired
    /// outcomes forever (the pre-aging behaviour).
    pub retire_horizon: Option<Duration>,
    /// Record every local decision transition in a host-drainable event
    /// queue ([`crate::SiteNode::drain_decision_events`]). Push-style
    /// front-ends (the reactor runtime) use it to answer client
    /// sessions the moment their transaction decides, instead of
    /// polling node state. Off by default: nothing is queued, no
    /// behaviour changes, and the golden digests are untouched.
    pub decision_events: bool,
    /// Which WAL backend this site's stable storage runs on.
    pub wal_backend: WalBackendConfig,
    /// Write a [`qbc_core::LogRecord::Checkpoint`] (and truncate the
    /// dead log prefix) roughly this often, measured from the first
    /// record after the previous checkpoint. Bounds stable storage the
    /// way [`NodeConfig::retire_after`] bounds the in-memory tables —
    /// and only pays off combined with it: every *live* (unretired)
    /// transaction pins the log from its first record onward. `None`
    /// (the default) never checkpoints (the seed behaviour: the log
    /// grows forever).
    pub checkpoint_interval: Option<Duration>,
    /// Also checkpoint once this many bytes of log records have been
    /// appended since the last checkpoint (measured with the on-disk
    /// encoding, [`qbc_core::encoded_len`]). Complements the timer: a
    /// read-mostly site with a quiet WAL stops checkpointing
    /// pointlessly, and a write-heavy one checkpoints as soon as the
    /// suffix balloons instead of waiting out the tick. Works alone or
    /// alongside [`NodeConfig::checkpoint_interval`]. `None` (the
    /// default) triggers on the timer only.
    pub checkpoint_bytes: Option<u64>,
    /// Enable MVCC snapshot reads: the site maintains a commit-stable
    /// watermark (piggybacked on outgoing protocol messages), retains
    /// [`NodeConfig::version_retention`] versions per item, and answers
    /// [`crate::SiteNode::start_snapshot_read`] from the newest version
    /// at or below the shard watermark — bypassing locks and pins, so
    /// pinned copies never make a read unavailable. Off by default:
    /// no watermark bookkeeping runs, no message is wrapped, and the
    /// store keeps single-slot semantics (the seed behaviour, byte-
    /// identical golden digests).
    pub snapshot_reads: bool,
    /// How many committed versions each item retains when
    /// [`NodeConfig::snapshot_reads`] is on (≥ 1; clamped). With 1 the
    /// snapshot path still works but always serves the newest committed
    /// version; more retention lets reads land exactly at the
    /// watermark while writers race ahead.
    pub version_retention: usize,
    /// The observability sink this site emits protocol trace events
    /// into (shared across the cluster). `None` (the default) emits
    /// nothing: no event is even constructed, so the simulator hot
    /// path — and both golden digests — are byte-identical to the
    /// uninstrumented build.
    pub obs: Option<Arc<Obs>>,
    /// Seeded protocol mutation for model-checker validation: this
    /// site's coordinators accept one PC-ACK less than the QC1 write
    /// quorum ([`qbc_core::Coordinator::with_weakened_qc1`]). Never set
    /// outside tests — the model-check suite proves the checker catches
    /// the resulting atomicity violation.
    pub mutation_weaken_qc1: bool,
    /// Seeded Paxos Commit mutation for model-checker validation: this
    /// site's Paxos leaders/candidates decide on F acceptances instead
    /// of the F+1 majority
    /// ([`qbc_core::PaxosLeader::with_weakened_quorum`]), so a decision
    /// can rest on a quorum a recovery candidate's Phase-1 quorum need
    /// not intersect. Never set outside tests.
    pub mutation_weaken_paxos: bool,
}

impl NodeConfig {
    /// A configuration with conventional defaults.
    pub fn new(site: SiteId, catalog: Catalog, t_bound: Duration) -> Self {
        NodeConfig {
            site,
            catalog,
            site_votes: None,
            t_bound,
            vote_no_on: BTreeSet::new(),
            faulty: FaultyMode::Correct,
            retry_blocked: true,
            blocked_retry: Duration(t_bound.0 * 6),
            max_termination_rounds: u64::MAX,
            group_commit: false,
            group_commit_window: Duration((t_bound.0 / 2).max(1)),
            adaptive_commit_window: false,
            group_commit_max_batch: 64,
            force_latency: Duration::ZERO,
            retire_after: None,
            retire_horizon: None,
            decision_events: false,
            wal_backend: WalBackendConfig::Memory,
            checkpoint_interval: None,
            checkpoint_bytes: None,
            snapshot_reads: false,
            version_retention: 1,
            obs: None,
            mutation_weaken_qc1: false,
            mutation_weaken_paxos: false,
        }
    }

    /// Installs the seeded QC1 commit-quorum mutation (builder style;
    /// see [`NodeConfig::mutation_weaken_qc1`]).
    pub fn with_weakened_qc1(mut self) -> Self {
        self.mutation_weaken_qc1 = true;
        self
    }

    /// Installs the seeded Paxos acceptor-quorum mutation (builder
    /// style; see [`NodeConfig::mutation_weaken_paxos`]).
    pub fn with_weakened_paxos(mut self) -> Self {
        self.mutation_weaken_paxos = true;
        self
    }

    /// Selects the file-backed WAL rooted at `dir` (4 MiB segments,
    /// fsync on; set [`NodeConfig::wal_backend`] directly for other
    /// shapes).
    pub fn with_file_wal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_backend = WalBackendConfig::File {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync: true,
        };
        self
    }

    /// Enables periodic checkpointing + log truncation (builder style).
    pub fn with_checkpoints(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Also checkpoint every `bytes` of appended log records (builder
    /// style; see [`NodeConfig::checkpoint_bytes`]).
    pub fn with_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = Some(bytes);
        self
    }

    /// Enables MVCC snapshot reads with the given per-item version
    /// retention (builder style; see [`NodeConfig::snapshot_reads`]).
    pub fn with_snapshot_reads(mut self, retention: usize) -> Self {
        self.snapshot_reads = true;
        self.version_retention = retention.max(1);
        self
    }

    /// Enables group-commit batching of WAL forces.
    pub fn with_group_commit(mut self) -> Self {
        self.group_commit = true;
        self
    }

    /// Sizes the group-commit window from the live `wal_backlog` gauge
    /// instead of the static constant (builder style).
    pub fn with_adaptive_commit_window(mut self) -> Self {
        self.adaptive_commit_window = true;
        self
    }

    /// Wires this site to an observability sink (builder style).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Sets the simulated per-force latency of the log device.
    pub fn with_force_latency(mut self, latency: Duration) -> Self {
        self.force_latency = latency;
        self
    }

    /// Sets the Skeen site-vote parameters.
    pub fn with_site_votes(mut self, sv: SiteVotes) -> Self {
        self.site_votes = Some(sv);
        self
    }

    /// Scripts a no vote for a transaction.
    pub fn vote_no(mut self, txn: TxnId) -> Self {
        self.vote_no_on.insert(txn);
        self
    }

    /// Enables the Example 3 fault.
    pub fn with_fault(mut self, faulty: FaultyMode) -> Self {
        self.faulty = faulty;
        self
    }

    /// Disables blocked-transaction retries (lets experiments observe a
    /// lasting blocked state).
    pub fn no_retry(mut self) -> Self {
        self.retry_blocked = false;
        self
    }

    /// Extra delay a message may suffer at its sender waiting for WAL
    /// durability: one batch window (if batching) plus one force. The
    /// paper's timeout arithmetic assumes `T` bounds end-to-end delay;
    /// with a modeled log device, collection windows must budget for
    /// the sender-side storage stall too.
    pub fn storage_slack(&self) -> Duration {
        let window = if self.group_commit {
            self.group_commit_window
        } else {
            Duration::ZERO
        };
        Duration(window.0 + self.force_latency.0)
    }

    /// Collection window `2T` (Figs. 5/8 phases 2–3), widened by the
    /// round-trip storage slack.
    pub fn window_2t(&self) -> Duration {
        Duration(self.t_bound.times(2).0 + self.storage_slack().times(2).0)
    }

    /// Watchdog `3T` (Fig. 5 participant event 6), widened by the
    /// storage slack.
    pub fn watchdog_3t(&self) -> Duration {
        Duration(self.t_bound.times(3).0 + self.storage_slack().times(3).0)
    }

    /// Cross-shard vote-collection window: long enough for the
    /// `X-BRANCH-REQ` hop plus a full in-shard vote + prepare round and
    /// the `X-VOTE` hop back (≈ 6 one-way delays), with storage slack —
    /// three `2T` windows.
    pub fn x_window(&self) -> Duration {
        self.window_2t().times(3)
    }

    /// Sets the decided-state retention window (builder style).
    pub fn with_retirement(mut self, after: Duration) -> Self {
        self.retire_after = Some(after);
        self
    }

    /// Sets the retired-outcome aging horizon (builder style; see
    /// [`NodeConfig::retire_horizon`]).
    pub fn with_retire_horizon(mut self, horizon: Duration) -> Self {
        self.retire_horizon = Some(horizon);
        self
    }

    /// Sanity-check the protocol parameters for a given kind.
    pub fn validate_for(&self, protocol: ProtocolKind) -> Result<(), String> {
        if protocol == ProtocolKind::SkeenQuorum {
            match &self.site_votes {
                None => return Err("SkeenQuorum requires site_votes".into()),
                Some(sv) => sv.validate()?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_votes::CatalogBuilder;
    use qbc_votes::ItemId;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(0), SiteId(1), SiteId(2)])
            .majority()
            .build()
            .unwrap()
    }

    #[test]
    fn timeouts_are_paper_multiples() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10));
        assert_eq!(cfg.window_2t(), Duration(20));
        assert_eq!(cfg.watchdog_3t(), Duration(30));
        assert_eq!(cfg.blocked_retry, Duration(60));
    }

    #[test]
    fn skeen_requires_site_votes() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10));
        assert!(cfg.validate_for(ProtocolKind::SkeenQuorum).is_err());
        assert!(cfg.validate_for(ProtocolKind::QuorumCommit1).is_ok());
        let cfg = cfg.with_site_votes(SiteVotes::uniform([SiteId(0), SiteId(1), SiteId(2)], 2, 2));
        assert!(cfg.validate_for(ProtocolKind::SkeenQuorum).is_ok());
    }

    #[test]
    fn storage_slack_widens_windows() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10))
            .with_group_commit()
            .with_force_latency(Duration(4));
        // window 5 (t/2) + force 4 = 9 slack.
        assert_eq!(cfg.storage_slack(), Duration(9));
        assert_eq!(cfg.window_2t(), Duration(20 + 18));
        assert_eq!(cfg.watchdog_3t(), Duration(30 + 27));
    }

    #[test]
    fn builder_helpers() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10))
            .vote_no(TxnId(4))
            .no_retry();
        assert!(cfg.vote_no_on.contains(&TxnId(4)));
        assert!(!cfg.retry_blocked);
    }
}
