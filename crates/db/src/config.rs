//! Site-node configuration.

use qbc_core::{FaultyMode, ProtocolKind, SiteVotes, TxnId};
use qbc_simnet::{Duration, SiteId};
use qbc_votes::Catalog;
use std::collections::BTreeSet;

/// Static configuration of one database site.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This site's id.
    pub site: SiteId,
    /// The shared replication catalog (copy placement, `r`/`w` quorums).
    pub catalog: Catalog,
    /// Site-vote parameters, required when any transaction runs
    /// [`ProtocolKind::SkeenQuorum`].
    pub site_votes: Option<SiteVotes>,
    /// The longest end-to-end network delay `T`; all protocol timeouts
    /// are fixed multiples of it (`2T` collection windows, `3T`
    /// watchdog).
    pub t_bound: Duration,
    /// Transactions this site votes *no* on (models a site whose I/O
    /// subsystem cannot perform the update).
    pub vote_no_on: BTreeSet<TxnId>,
    /// Example 3 fault injection: answer prepares across the PC/PA wall.
    pub faulty: FaultyMode,
    /// Re-run the termination protocol after declaring a transaction
    /// blocked (re-entrancy; the retry fires after
    /// [`NodeConfig::blocked_retry`]).
    pub retry_blocked: bool,
    /// Delay before a blocked transaction's termination is retried.
    pub blocked_retry: Duration,
    /// Maximum termination rounds this site will *initiate* per
    /// transaction. Unlimited by default (the paper's re-entrant loop);
    /// Monte-Carlo sweeps cap it so permanently blocked runs settle
    /// instead of churning elections forever.
    pub max_termination_rounds: u64,
}

impl NodeConfig {
    /// A configuration with conventional defaults.
    pub fn new(site: SiteId, catalog: Catalog, t_bound: Duration) -> Self {
        NodeConfig {
            site,
            catalog,
            site_votes: None,
            t_bound,
            vote_no_on: BTreeSet::new(),
            faulty: FaultyMode::Correct,
            retry_blocked: true,
            blocked_retry: Duration(t_bound.0 * 6),
            max_termination_rounds: u64::MAX,
        }
    }

    /// Sets the Skeen site-vote parameters.
    pub fn with_site_votes(mut self, sv: SiteVotes) -> Self {
        self.site_votes = Some(sv);
        self
    }

    /// Scripts a no vote for a transaction.
    pub fn vote_no(mut self, txn: TxnId) -> Self {
        self.vote_no_on.insert(txn);
        self
    }

    /// Enables the Example 3 fault.
    pub fn with_fault(mut self, faulty: FaultyMode) -> Self {
        self.faulty = faulty;
        self
    }

    /// Disables blocked-transaction retries (lets experiments observe a
    /// lasting blocked state).
    pub fn no_retry(mut self) -> Self {
        self.retry_blocked = false;
        self
    }

    /// Collection window `2T` (Figs. 5/8 phases 2–3).
    pub fn window_2t(&self) -> Duration {
        self.t_bound.times(2)
    }

    /// Watchdog `3T` (Fig. 5 participant event 6).
    pub fn watchdog_3t(&self) -> Duration {
        self.t_bound.times(3)
    }

    /// Sanity-check the protocol parameters for a given kind.
    pub fn validate_for(&self, protocol: ProtocolKind) -> Result<(), String> {
        if protocol == ProtocolKind::SkeenQuorum {
            match &self.site_votes {
                None => return Err("SkeenQuorum requires site_votes".into()),
                Some(sv) => sv.validate()?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_votes::CatalogBuilder;
    use qbc_votes::ItemId;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(0), SiteId(1), SiteId(2)])
            .majority()
            .build()
            .unwrap()
    }

    #[test]
    fn timeouts_are_paper_multiples() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10));
        assert_eq!(cfg.window_2t(), Duration(20));
        assert_eq!(cfg.watchdog_3t(), Duration(30));
        assert_eq!(cfg.blocked_retry, Duration(60));
    }

    #[test]
    fn skeen_requires_site_votes() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10));
        assert!(cfg.validate_for(ProtocolKind::SkeenQuorum).is_err());
        assert!(cfg.validate_for(ProtocolKind::QuorumCommit1).is_ok());
        let cfg = cfg.with_site_votes(SiteVotes::uniform([SiteId(0), SiteId(1), SiteId(2)], 2, 2));
        assert!(cfg.validate_for(ProtocolKind::SkeenQuorum).is_ok());
    }

    #[test]
    fn builder_helpers() {
        let cfg = NodeConfig::new(SiteId(0), catalog(), Duration(10))
            .vote_no(TxnId(4))
            .no_retry();
        assert!(cfg.vote_no_on.contains(&TxnId(4)));
        assert!(!cfg.retry_blocked);
    }
}
