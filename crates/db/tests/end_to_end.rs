//! End-to-end protocol runs on the deterministic simulator.

use qbc_core::{Decision, LocalState, ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_db::{build_cluster, NodeConfig, SiteNode};
use qbc_simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};

/// Catalog: one item `x` replicated at s0..s4 (unit votes, r=2, w=4).
fn small_catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(5))
        .quorums(2, 4)
        .build()
        .unwrap()
}

const T: Duration = Duration(10);

fn sim_with(
    catalog: &Catalog,
    n: u32,
    seed: u64,
    customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> Sim<SiteNode> {
    let nodes = build_cluster(sites(n), catalog, T, customize);
    Sim::new(
        SimConfig {
            seed,
            delay: DelayModel::uniform(Duration(2), T),
            record_trace: true,
        },
        nodes,
    )
}

fn begin(sim: &mut Sim<SiteNode>, at: Time, site: SiteId, txn: u64, value: i64, p: ProtocolKind) {
    sim.schedule_call(at, site, move |node, ctx| {
        node.begin_transaction(ctx, TxnId(txn), WriteSet::new([(ItemId(0), value)]), p);
    });
}

fn decisions(sim: &Sim<SiteNode>, txn: TxnId) -> Vec<(SiteId, Option<Decision>)> {
    sim.nodes().map(|(s, n)| (s, n.decision(txn))).collect()
}

fn assert_all_committed(sim: &Sim<SiteNode>, txn: TxnId) {
    for (s, d) in decisions(sim, txn) {
        assert_eq!(d, Some(Decision::Commit), "site {s} must commit");
    }
}

fn assert_all_aborted(sim: &Sim<SiteNode>, txn: TxnId) {
    for (s, d) in decisions(sim, txn) {
        assert_eq!(d, Some(Decision::Abort), "site {s} must abort");
    }
}

fn assert_consistent(sim: &Sim<SiteNode>, txn: TxnId) {
    let set: std::collections::BTreeSet<Decision> =
        sim.nodes().filter_map(|(_, n)| n.decision(txn)).collect();
    assert!(set.len() <= 1, "atomicity violated: {set:?}");
    for (s, n) in sim.nodes() {
        assert!(
            n.violations().is_empty(),
            "violations at {s}: {:?}",
            n.violations()
        );
    }
}

#[test]
fn failure_free_commit_all_protocols() {
    let catalog = small_catalog();
    for (i, p) in ProtocolKind::ALL.into_iter().enumerate() {
        if p == ProtocolKind::SkeenQuorum {
            continue; // covered separately (needs site votes)
        }
        let mut sim = sim_with(&catalog, 5, 7 + i as u64, |c| c);
        begin(&mut sim, Time(0), SiteId(0), 1, 42, p);
        sim.run_until(Time(2_000));
        assert_all_committed(&sim, TxnId(1));
        assert_consistent(&sim, TxnId(1));
        // Values applied at every copy.
        for (s, n) in sim.nodes() {
            let (_, v) = n.item_value(ItemId(0)).expect("copy exists");
            assert_eq!(v, 42, "value at {s}");
        }
    }
}

#[test]
fn failure_free_commit_skeen() {
    let catalog = small_catalog();
    let sv = SiteVotes::uniform(sites(5), 3, 3);
    let mut sim = sim_with(&catalog, 5, 3, move |c| c.with_site_votes(sv.clone()));
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        9,
        ProtocolKind::SkeenQuorum,
    );
    sim.run_until(Time(2_000));
    assert_all_committed(&sim, TxnId(1));
    assert_consistent(&sim, TxnId(1));
}

#[test]
fn one_no_vote_aborts_everywhere() {
    let catalog = small_catalog();
    for p in [
        ProtocolKind::TwoPhase,
        ProtocolKind::ThreePhase,
        ProtocolKind::QuorumCommit1,
        ProtocolKind::QuorumCommit2,
    ] {
        let mut sim = sim_with(&catalog, 5, 11, |c| {
            if c.site == SiteId(3) {
                c.vote_no(TxnId(1))
            } else {
                c
            }
        });
        begin(&mut sim, Time(0), SiteId(0), 1, 5, p);
        sim.run_until(Time(2_000));
        assert_all_aborted(&sim, TxnId(1));
        assert_consistent(&sim, TxnId(1));
        // No value applied anywhere.
        for (_, n) in sim.nodes() {
            let (_, v) = n.item_value(ItemId(0)).unwrap();
            assert_eq!(v, 0);
        }
    }
}

#[test]
fn two_pc_blocks_on_coordinator_crash_after_votes() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 13, |c| c);
    begin(&mut sim, Time(0), SiteId(0), 1, 5, ProtocolKind::TwoPhase);
    // Crash the coordinator after votes are cast (T=10: VoteReq ≤10,
    // votes ≤20) but before its COMMIT command is sent... 2PC decides
    // when the last vote arrives, so crash at the instant votes land at
    // earliest possible decision time minus epsilon is racy with random
    // delays; instead block all outgoing command links, then crash.
    for s in 1..5 {
        sim.schedule_block_link(Time(11), SiteId(0), SiteId(s));
    }
    sim.schedule_crash(Time(30), SiteId(0));
    sim.run_until(Time(3_000));
    // Participants voted yes, coordinator unreachable: cooperative
    // termination finds all-W and blocks. The transaction stays
    // undecided at s1..s4, and the item stays locked.
    for s in 1..5u32 {
        let n = sim.node(SiteId(s));
        assert_eq!(n.decision(TxnId(1)), None, "s{s} must be undecided");
        assert_eq!(n.local_state(TxnId(1)), Some(LocalState::Wait));
        assert!(n.is_item_locked(ItemId(0)), "blocked txn pins the item");
    }
    assert_consistent(&sim, TxnId(1));
}

#[test]
fn qc1_terminates_after_coordinator_crash_before_prepare() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 17, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        5,
        ProtocolKind::QuorumCommit1,
    );
    // Cut the coordinator off after VoteReq delivery but before it can
    // send PREPARE-TO-COMMIT, then crash it: participants are all in W.
    for s in 1..5 {
        sim.schedule_block_link(Time(11), SiteId(0), SiteId(s));
    }
    sim.schedule_crash(Time(30), SiteId(0));
    sim.run_until(Time(3_000));
    // TP1: all-W partition {s1..s4} holds 4 ≥ r(x)=2 votes among
    // non-PC sites → abort quorum → everyone aborts and unlocks.
    for s in 1..5u32 {
        let n = sim.node(SiteId(s));
        assert_eq!(n.decision(TxnId(1)), Some(Decision::Abort), "s{s}");
        assert!(!n.is_item_locked(ItemId(0)));
    }
    assert_consistent(&sim, TxnId(1));
}

#[test]
fn qc2_terminates_after_coordinator_crash_before_prepare() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 19, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        5,
        ProtocolKind::QuorumCommit2,
    );
    for s in 1..5 {
        sim.schedule_block_link(Time(11), SiteId(0), SiteId(s));
    }
    sim.schedule_crash(Time(30), SiteId(0));
    sim.run_until(Time(3_000));
    // TP2 abort rule needs w(x)=4 votes from non-PC sites: s1..s4 hold
    // exactly 4 → abort.
    for s in 1..5u32 {
        assert_eq!(
            sim.node(SiteId(s)).decision(TxnId(1)),
            Some(Decision::Abort),
            "s{s}"
        );
    }
    assert_consistent(&sim, TxnId(1));
}

#[test]
fn crashed_participant_recovers_and_learns_commit() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 23, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        77,
        ProtocolKind::QuorumCommit1,
    );
    // s4 crashes right after voting; the rest commit (w(x)=4 of 5 votes
    // reachable... s4's ack may be missing: commit needs w(x)=4 votes of
    // PC-acks among 5 copies: s0,s1,s2,s3 suffice).
    sim.schedule_crash(Time(25), SiteId(4));
    sim.schedule_recover(Time(500), SiteId(4));
    sim.run_until(Time(5_000));
    assert_all_committed(&sim, TxnId(1));
    assert_consistent(&sim, TxnId(1));
    let (_, v) = sim.node(SiteId(4)).item_value(ItemId(0)).unwrap();
    assert_eq!(v, 77, "recovered site must apply the committed value");
}

#[test]
fn partition_heals_and_stragglers_learn_the_outcome() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 29, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        5,
        ProtocolKind::QuorumCommit1,
    );
    // Partition away s3, s4 before the prepare round completes there.
    sim.schedule_partition(
        Time(12),
        vec![
            vec![SiteId(0), SiteId(1), SiteId(2)],
            vec![SiteId(3), SiteId(4)],
        ],
    );
    sim.schedule_heal(Time(600));
    sim.run_until(Time(6_000));
    // Majority side cannot commit (w(x)=4 > 3 copies reachable) → the
    // outcome either way must become uniform after healing.
    assert_consistent(&sim, TxnId(1));
    let d0 = sim.node(SiteId(0)).decision(TxnId(1));
    assert!(d0.is_some(), "must terminate after heal");
    for s in 1..5u32 {
        assert_eq!(sim.node(SiteId(s)).decision(TxnId(1)), d0, "s{s} agrees");
    }
}

#[test]
fn quorum_read_returns_latest_committed_value() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 31, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        123,
        ProtocolKind::QuorumCommit2,
    );
    sim.schedule_call(Time(1_000), SiteId(2), |node, ctx| {
        node.start_read(ctx, 900, ItemId(0));
    });
    // Poll after the collection window but before the collector retires
    // (read tables are bounded: entries are dropped a couple of windows
    // after resolving).
    sim.run_until(Time(1_040));
    match sim.node(SiteId(2)).read_result(900) {
        Some(qbc_db::ReadResult::Success { value, .. }) => assert_eq!(value, 123),
        other => panic!("read should succeed, got {other:?}"),
    }
}

#[test]
fn quorum_read_fails_while_item_is_pinned_by_blocked_txn() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 37, |c| c);
    begin(&mut sim, Time(0), SiteId(0), 1, 5, ProtocolKind::TwoPhase);
    // Block the 2PC coordinator's commands and crash it: participants
    // stay blocked in W holding X-locks.
    for s in 1..5 {
        sim.schedule_block_link(Time(11), SiteId(0), SiteId(s));
    }
    sim.schedule_crash(Time(30), SiteId(0));
    // All copies are pinned: the read cannot assemble r(x)=2 votes.
    sim.schedule_call(Time(1_000), SiteId(2), |node, ctx| {
        node.start_read(ctx, 901, ItemId(0));
    });
    // The collection window (2T = 20) expires at t=1020; poll before
    // the resolved collector retires.
    sim.run_until(Time(1_040));
    assert_eq!(
        sim.node(SiteId(2)).read_result(901),
        Some(qbc_db::ReadResult::Unavailable),
        "blocked locks must make the item unreadable"
    );
}

#[test]
fn sequential_transactions_advance_versions() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 41, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        10,
        ProtocolKind::QuorumCommit2,
    );
    begin(
        &mut sim,
        Time(500),
        SiteId(1),
        2,
        20,
        ProtocolKind::QuorumCommit2,
    );
    begin(
        &mut sim,
        Time(1_000),
        SiteId(2),
        3,
        30,
        ProtocolKind::QuorumCommit2,
    );
    sim.run_until(Time(4_000));
    for txn in [1u64, 2, 3] {
        assert_all_committed(&sim, TxnId(txn));
    }
    for (s, n) in sim.nodes() {
        let (ver, v) = n.item_value(ItemId(0)).unwrap();
        assert_eq!(v, 30, "final value at {s}");
        assert_eq!(ver, qbc_votes::Version(3), "three writes at {s}");
    }
}

#[test]
fn concurrent_conflicting_transactions_no_wait_aborts_one() {
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 43, |c| c);
    // Two transactions writing x at the same instant from different
    // coordinators: no-wait locking votes no for the loser at each site.
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        100,
        ProtocolKind::QuorumCommit1,
    );
    begin(
        &mut sim,
        Time(0),
        SiteId(4),
        2,
        200,
        ProtocolKind::QuorumCommit1,
    );
    sim.run_until(Time(5_000));
    assert_consistent(&sim, TxnId(1));
    assert_consistent(&sim, TxnId(2));
    let d1 = sim.node(SiteId(0)).decision(TxnId(1));
    let d2 = sim.node(SiteId(4)).decision(TxnId(2));
    assert!(
        d1 == Some(Decision::Abort) || d2 == Some(Decision::Abort),
        "at least one of two conflicting transactions must abort (got {d1:?}, {d2:?})"
    );
    // Whatever committed (if anything) is the uniform durable value.
    for (_, n) in sim.nodes() {
        let (_, v) = n.item_value(ItemId(0)).unwrap();
        assert!(v == 0 || v == 100 || v == 200);
    }
}

#[test]
fn partitioned_but_alive_coordinator_hands_off_to_termination() {
    // The coordinator stays up but is partitioned away right after the
    // votes: its ack window expires below quorum and it hands off to
    // the termination protocol (CoordPhase::HandedOff). The majority
    // side terminates by itself; the minority (coordinator) side
    // eventually learns after the heal.
    let catalog = small_catalog();
    let mut sim = sim_with(&catalog, 5, 47, |c| c);
    begin(
        &mut sim,
        Time(0),
        SiteId(0),
        1,
        5,
        ProtocolKind::QuorumCommit1,
    );
    sim.schedule_partition(
        Time(21),
        vec![
            vec![SiteId(0)],
            vec![SiteId(1), SiteId(2), SiteId(3), SiteId(4)],
        ],
    );
    sim.run_until(Time(2_500));
    // Majority side {s1..s4}: 4 votes of x; TP1 terminates it (which
    // way depends on whether prepares landed before the cut).
    let d1 = sim.node(SiteId(1)).decision(TxnId(1));
    assert!(d1.is_some(), "majority side must terminate without s0");
    for s in 2..5u32 {
        assert_eq!(sim.node(SiteId(s)).decision(TxnId(1)), d1, "s{s}");
    }
    // Heal: the coordinator converges to the same outcome.
    sim.schedule_heal(Time(2_600));
    sim.run_until(Time(8_000));
    assert_eq!(sim.node(SiteId(0)).decision(TxnId(1)), d1, "s0 converges");
    assert_consistent(&sim, TxnId(1));
}

#[test]
fn deterministic_replay_same_seed_same_outcome() {
    let catalog = small_catalog();
    let run = |seed: u64| {
        let mut sim = sim_with(&catalog, 5, seed, |c| c);
        begin(
            &mut sim,
            Time(0),
            SiteId(0),
            1,
            5,
            ProtocolKind::QuorumCommit1,
        );
        sim.schedule_partition(
            Time(15),
            vec![
                vec![SiteId(0), SiteId(1)],
                vec![SiteId(2), SiteId(3), SiteId(4)],
            ],
        );
        sim.schedule_heal(Time(800));
        sim.run_until(Time(5_000));
        (
            decisions(&sim, TxnId(1)),
            sim.stats().sent,
            sim.stats().delivered,
        )
    };
    assert_eq!(run(99), run(99));
}
