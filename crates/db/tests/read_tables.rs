//! Read-path table hygiene (ISSUE 8): resolved read collectors — quorum
//! and snapshot alike, including reads of unknown items — retire a few
//! collection windows after resolving, so the per-site `reads` /
//! `snap_reads` maps stay bounded on long-running sites instead of
//! growing until the next crash.

use qbc_core::{ProtocolKind, TxnId, WriteSet};
use qbc_db::{build_cluster, NodeConfig, ReadResult, SiteNode};
use qbc_simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};

/// One item `x` replicated at s0..s4 (unit votes, r=2, w=4).
fn small_catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(5))
        .quorums(2, 4)
        .build()
        .unwrap()
}

const T: Duration = Duration(10);

fn sim_with(seed: u64, customize: impl FnMut(NodeConfig) -> NodeConfig) -> Sim<SiteNode> {
    let nodes = build_cluster(sites(5), &small_catalog(), T, customize);
    Sim::new(
        SimConfig {
            seed,
            delay: DelayModel::uniform(Duration(2), T),
            record_trace: true,
        },
        nodes,
    )
}

fn commit(sim: &mut Sim<SiteNode>, at: Time, txn: u64, value: i64) {
    sim.schedule_call(at, SiteId(0), move |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(txn),
            WriteSet::new([(ItemId(0), value)]),
            ProtocolKind::QuorumCommit1,
        );
    });
}

#[test]
fn resolved_quorum_read_collectors_retire_and_bound_the_table() {
    let mut sim = sim_with(3, |c| c);
    commit(&mut sim, Time(0), 1, 42);
    sim.run_until(Time(500));

    // A burst of reads. Each collector resolves by its collection
    // window (2T = 20) and must be dropped a couple of windows later.
    for i in 0..10u64 {
        let req = 100 + i;
        sim.schedule_call(Time(1_000 + i), SiteId(2), move |node, ctx| {
            node.start_read(ctx, req, ItemId(0));
        });
    }
    // In-window: every read has resolved and is still pollable.
    sim.run_until(Time(1_045));
    let node = sim.node(SiteId(2));
    assert_eq!(node.reads_table_len(), 10, "all collectors live in-window");
    for i in 0..10u64 {
        match node.read_result(100 + i) {
            Some(ReadResult::Success { value, .. }) => assert_eq!(value, 42),
            other => panic!("read {i} did not succeed in-window: {other:?}"),
        }
    }

    // Past the retirement TTL: the table is empty again — the leak this
    // test regresses was entries surviving until the next crash.
    sim.run_until(Time(1_200));
    let node = sim.node(SiteId(2));
    assert_eq!(node.reads_table_len(), 0, "resolved collectors must retire");
    assert_eq!(node.read_result(100), None);
}

#[test]
fn unknown_item_read_resolves_unavailable_and_retires() {
    let mut sim = sim_with(5, |c| c);
    // `ItemId(77)` is not in the catalog: the read resolves Unavailable
    // immediately — and, post-fix, its collector retires like any
    // other instead of leaking forever.
    sim.schedule_call(Time(100), SiteId(1), |node, ctx| {
        node.start_read(ctx, 500, ItemId(77));
    });
    sim.run_until(Time(110));
    let node = sim.node(SiteId(1));
    assert_eq!(node.read_result(500), Some(ReadResult::Unavailable));
    assert_eq!(node.reads_table_len(), 1);

    sim.run_until(Time(300));
    let node = sim.node(SiteId(1));
    assert_eq!(node.reads_table_len(), 0, "unknown-item collector leaked");
    assert_eq!(node.read_result(500), None);
}

#[test]
fn snapshot_read_collectors_retire_and_bound_the_table() {
    let mut sim = sim_with(7, |c| c.with_snapshot_reads(2));
    commit(&mut sim, Time(0), 1, 42);
    commit(&mut sim, Time(200), 2, 43);
    sim.run_until(Time(500));

    // Local snapshot reads resolve synchronously at the shard
    // watermark. After two commits the coordinator has heard every
    // peer's watermark at least at version 1, so the read lands on the
    // first committed value (the commit-stable prefix, not the
    // frontier).
    for i in 0..8u64 {
        let req = 600 + i;
        sim.schedule_call(Time(1_000 + i), SiteId(0), move |node, ctx| {
            node.start_snapshot_read(ctx, req, ItemId(0));
        });
    }
    sim.run_until(Time(1_020));
    let node = sim.node(SiteId(0));
    assert_eq!(node.snap_reads_table_len(), 8);
    for i in 0..8u64 {
        match node.snap_read_result(600 + i) {
            Some(ReadResult::Success { value, .. }) => {
                assert!(
                    value == 42 || value == 43,
                    "snapshot read saw a non-committed value {value}"
                );
            }
            other => panic!("snapshot read {i} did not succeed: {other:?}"),
        }
    }

    sim.run_until(Time(1_200));
    let node = sim.node(SiteId(0));
    assert_eq!(node.snap_reads_table_len(), 0);
    assert_eq!(node.snap_read_result(600), None);

    // Unknown item on the snapshot path: same unified retirement.
    sim.schedule_call(Time(1_300), SiteId(0), |node, ctx| {
        node.start_snapshot_read(ctx, 900, ItemId(77));
    });
    sim.run_until(Time(1_310));
    assert_eq!(
        sim.node(SiteId(0)).snap_read_result(900),
        Some(ReadResult::Unavailable)
    );
    sim.run_until(Time(1_500));
    let node = sim.node(SiteId(0));
    assert_eq!(node.snap_reads_table_len(), 0);
    assert_eq!(node.snap_read_result(900), None);
}
