//! The metrics registry: a validated, ordered collection of counters,
//! gauges and histograms with two render targets — Prometheus text
//! exposition and a deterministic JSON snapshot.
//!
//! The registry is *snapshot-shaped*: producers build a fresh registry
//! from their current state at export time instead of mutating shared
//! registered handles. That keeps the hot paths free of instrument
//! lookups and makes the JSON export bit-reproducible under the
//! deterministic simulator (insertion order is the export order).

use crate::hist::LatencyHistogram;
use std::fmt::Write as _;

/// Why a metric was rejected by [`Registry::register`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is not `snake_case` (`[a-z][a-z0-9_]*`).
    BadName(String),
    /// A metric with the same name and label set is already registered.
    Duplicate(String),
    /// Two metrics share a name but disagree on type (Prometheus
    /// forbids it; one `TYPE` line per name).
    TypeMismatch(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BadName(n) => write!(f, "metric name {n:?} is not snake_case"),
            RegistryError::Duplicate(n) => write!(f, "duplicate metric {n:?}"),
            RegistryError::TypeMismatch(n) => {
                write!(f, "metric {n:?} registered with two different types")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The value of one metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// A bucketed distribution (boxed: a histogram is an order of
    /// magnitude larger than the scalar variants).
    Histogram(Box<LatencyHistogram>),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: name, optional `(key, value)` labels, help
/// text, and a value.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Snake-case metric name.
    pub name: String,
    /// Label pairs, rendered in the given order.
    pub labels: Vec<(String, String)>,
    /// One-line description (the Prometheus `HELP` line).
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// A validated, ordered metric collection.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Vec<Metric>,
}

fn is_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metric, rejecting non-snake-case names, duplicate
    /// `(name, labels)` pairs, and same-name type conflicts.
    pub fn register(&mut self, m: Metric) -> Result<(), RegistryError> {
        if !is_snake_case(&m.name) {
            return Err(RegistryError::BadName(m.name));
        }
        for existing in &self.metrics {
            if existing.name == m.name {
                if existing.value.type_name() != m.value.type_name() {
                    return Err(RegistryError::TypeMismatch(m.name));
                }
                if existing.labels == m.labels {
                    return Err(RegistryError::Duplicate(m.name));
                }
            }
        }
        self.metrics.push(m);
        Ok(())
    }

    /// Registers a counter (panics on a name the producer got wrong —
    /// producer names are compile-time constants, so this is a bug, not
    /// input).
    pub fn counter(&mut self, name: &str, labels: &[(&str, String)], help: &str, v: u64) {
        self.register(Metric {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).into(), v.clone()))
                .collect(),
            help: help.into(),
            value: MetricValue::Counter(v),
        })
        .expect("invalid counter registration");
    }

    /// Registers a gauge (same contract as [`Registry::counter`]).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, String)], help: &str, v: f64) {
        self.register(Metric {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).into(), v.clone()))
                .collect(),
            help: help.into(),
            value: MetricValue::Gauge(v),
        })
        .expect("invalid gauge registration");
    }

    /// Registers a histogram (same contract as [`Registry::counter`]).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, String)],
        help: &str,
        h: &LatencyHistogram,
    ) {
        self.register(Metric {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).into(), v.clone()))
                .collect(),
            help: help.into(),
            value: MetricValue::Histogram(Box::new(h.clone())),
        })
        .expect("invalid histogram registration");
    }

    /// The registered metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Renders the Prometheus text exposition format (`HELP`/`TYPE`
    /// once per metric name, histograms as cumulative `_bucket{le=}`
    /// series plus `_sum`/`_count`).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, m.value.type_name());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_str(&m.labels, &[]), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_str(&m.labels, &[]),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (le, n) in h.buckets() {
                        cum += n;
                        let le = le.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            label_str(&m.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_str(&m.labels, &[("le", "+Inf")]),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_str(&m.labels, &[]),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_str(&m.labels, &[]),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// Renders a deterministic JSON snapshot: metrics in insertion
    /// order, histograms with count/sum/p50/p99/max and their
    /// `[upper_bound, count]` buckets.
    pub fn json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", m.name);
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            let _ = write!(out, "}},\"type\":\"{}\",", m.value.type_name());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"value\":{}", fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        fmt_f64(h.mean()),
                        h.p50().0,
                        h.p99().0,
                        h.max().0
                    );
                    for (j, (le, n)) in h.buckets().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{le},{n}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn label_str(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{v}\"");
    }
    for (k, v) in extra {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats a float the same way on every platform: integers without a
/// fraction, everything else with enough digits to round-trip.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_simnet::Duration;

    #[test]
    fn rejects_non_snake_case_names() {
        let mut r = Registry::new();
        for bad in [
            "CamelCase",
            "kebab-case",
            "1leading",
            "",
            "dotted.name",
            "UPPER",
        ] {
            let err = r.register(Metric {
                name: bad.into(),
                labels: vec![],
                help: "h".into(),
                value: MetricValue::Counter(0),
            });
            assert_eq!(err, Err(RegistryError::BadName(bad.into())), "{bad}");
        }
    }

    #[test]
    fn rejects_duplicate_name_label_pairs() {
        let mut r = Registry::new();
        let m = |l: &str| Metric {
            name: "qbc_msgs_total".into(),
            labels: vec![("label".into(), l.into())],
            help: "h".into(),
            value: MetricValue::Counter(1),
        };
        r.register(m("a")).unwrap();
        r.register(m("b")).unwrap(); // same name, different labels: fine
        assert_eq!(
            r.register(m("a")),
            Err(RegistryError::Duplicate("qbc_msgs_total".into()))
        );
    }

    #[test]
    fn rejects_same_name_different_type() {
        let mut r = Registry::new();
        r.counter("qbc_thing", &[], "h", 1);
        let err = r.register(Metric {
            name: "qbc_thing".into(),
            labels: vec![("x".into(), "y".into())],
            help: "h".into(),
            value: MetricValue::Gauge(1.0),
        });
        assert_eq!(err, Err(RegistryError::TypeMismatch("qbc_thing".into())));
    }

    #[test]
    fn prometheus_text_renders_all_three_types() {
        let mut r = Registry::new();
        r.counter(
            "qbc_commits_total",
            &[("shard", "0".to_string())],
            "commits",
            7,
        );
        r.gauge("qbc_queue_depth", &[], "depth", 3.0);
        let mut h = LatencyHistogram::new();
        h.record(Duration(3));
        h.record(Duration(5));
        r.histogram("qbc_latency_ticks", &[], "latency", &h);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE qbc_commits_total counter"), "{text}");
        assert!(text.contains("qbc_commits_total{shard=\"0\"} 7"), "{text}");
        assert!(text.contains("qbc_queue_depth 3"), "{text}");
        assert!(
            text.contains("qbc_latency_ticks_bucket{le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qbc_latency_ticks_bucket{le=\"8\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qbc_latency_ticks_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("qbc_latency_ticks_sum 8"), "{text}");
        assert!(text.contains("qbc_latency_ticks_count 2"), "{text}");
    }

    #[test]
    fn help_and_type_lines_appear_once_per_name() {
        let mut r = Registry::new();
        r.counter("qbc_commits_total", &[("shard", "0".into())], "commits", 1);
        r.counter("qbc_commits_total", &[("shard", "1".into())], "commits", 2);
        let text = r.prometheus_text();
        assert_eq!(
            text.matches("# TYPE qbc_commits_total").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn json_snapshot_is_deterministic_and_ordered() {
        let build = || {
            let mut r = Registry::new();
            r.counter("qbc_b_total", &[], "b", 2);
            r.counter("qbc_a_total", &[], "a", 1);
            r.json()
        };
        let a = build();
        assert_eq!(a, build());
        // Insertion order, not alphabetical.
        assert!(
            a.find("qbc_b_total").unwrap() < a.find("qbc_a_total").unwrap(),
            "{a}"
        );
    }
}
