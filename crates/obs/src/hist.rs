//! Power-of-two bucketed histograms over virtual-time durations.
//!
//! Grew out of `qbc-cluster`'s latency histogram (which now re-exports
//! this type): the observability layer records many distributions —
//! phase latencies, pin times, blocking windows — and they all share
//! one bucketing scheme so exporters and quantile accessors need a
//! single code path.

use qbc_simnet::Duration;

/// A power-of-two-bucketed latency histogram over virtual-time
/// durations. Bucket `i` holds durations in `[2^i, 2^(i+1))` ticks
/// (bucket 0 also holds zero).
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let idx = (64 - d.0.max(1).leading_zeros() as usize - 1).min(31);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += d.0;
        self.max = self.max.max(d.0);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, in ticks.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded duration.
    pub fn max(&self) -> Duration {
        Duration(self.max)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`); zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration(1u64 << (i + 1));
            }
        }
        Duration(self.max)
    }

    /// Median (bucket upper bound): `quantile(0.5)`.
    pub fn p50(&self) -> Duration {
        self.quantile(0.5)
    }

    /// 99th percentile (bucket upper bound): `quantile(0.99)`.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one (bucket-wise; `max` is the
    /// max of both).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(upper bound, count)` pairs, ascending.
    /// Bucket `i`'s upper bound is `2^(i+1)` (exclusive); exporters turn
    /// these into cumulative `le` counts.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << (i + 1), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_pins_bucket_boundaries() {
        // Samples 1..=4 land in buckets [1,2), [2,4), [4,8): the
        // quantile accessor reports the *upper bound* of the bucket
        // holding the rank, so boundary samples resolve predictably.
        let mut h = LatencyHistogram::new();
        for d in [1, 2, 3, 4] {
            h.record(Duration(d));
        }
        // rank(0.25) = 1 → bucket [1,2) → upper bound 2.
        assert_eq!(h.quantile(0.25), Duration(2));
        // rank(0.5) = 2 → sample `2` in bucket [2,4) → upper bound 4.
        assert_eq!(h.p50(), Duration(4));
        // rank(0.99·4 → ceil) = 4 → sample `4` in bucket [4,8) → 8.
        assert_eq!(h.p99(), Duration(8));
        assert_eq!(h.quantile(1.0), Duration(8));
    }

    #[test]
    fn exact_power_of_two_opens_a_new_bucket() {
        // 2^k is the *inclusive lower* bound of bucket k, so a single
        // sample at 2^k reports an upper bound of 2^(k+1).
        for k in [1u64, 5, 10, 20] {
            let mut h = LatencyHistogram::new();
            h.record(Duration(1 << k));
            assert_eq!(h.p50(), Duration(1 << (k + 1)), "k={k}");
            assert_eq!(h.p99(), Duration(1 << (k + 1)), "k={k}");
        }
    }

    #[test]
    fn zero_and_one_share_the_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration(1));
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), Duration(2));
        assert_eq!(h.p99(), Duration(2));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
    }

    #[test]
    fn skewed_tail_separates_p50_from_p99() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration(3));
        }
        h.record(Duration(1000));
        assert_eq!(h.p50(), Duration(4));
        assert_eq!(h.quantile(0.99), Duration(4)); // rank 99 still in [2,4)
        assert_eq!(h.quantile(1.0), Duration(1024)); // tail bucket [512,1024)
    }

    #[test]
    fn merge_folds_counts_and_max() {
        let mut a = LatencyHistogram::new();
        a.record(Duration(3));
        let mut b = LatencyHistogram::new();
        b.record(Duration(100));
        b.record(Duration(3));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.max(), Duration(100));
        assert_eq!(a.quantile(1.0), Duration(128));
    }

    #[test]
    fn bucket_iterator_reports_upper_bounds() {
        let mut h = LatencyHistogram::new();
        h.record(Duration(1));
        h.record(Duration(5));
        h.record(Duration(5));
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(2, 1), (8, 2)]);
    }
}
