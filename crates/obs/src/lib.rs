//! # qbc-obs — protocol-aware observability
//!
//! The paper's claims are about *windows*: how long copies stay pinned
//! by undecided transactions, and how wide the blocking window is when
//! a coordinator fails. This crate measures exactly those quantities,
//! plus the columns of Gray & Lamport's protocol-comparison table
//! (message counts, forced writes), from a single stream of protocol
//! events:
//!
//! * [`TraceEvent`]/[`EventKind`]/[`TraceSink`] — the protocol-phase
//!   event model. The `qbc-db` site node emits one event per
//!   observable step (vote solicitation, commit point, decision force,
//!   termination rounds, cross-shard hold and outcome discovery, copy
//!   pins, crashes).
//! * [`Obs`] — the bundled consumer: per-site flight-recorder rings,
//!   per-transaction phase timers, blocking-window and pin-time
//!   accounting, message/force counters.
//! * [`Registry`] — a validated metric collection with two render
//!   targets: Prometheus text exposition and a deterministic JSON
//!   snapshot.
//! * [`LatencyHistogram`] — the shared power-of-two histogram (also
//!   re-exported by `qbc-cluster` for its per-shard metrics), with
//!   `p50`/`p99` quantile accessors.
//!
//! Everything is config-gated by [`ObsConfig`] and **off by default**:
//! when disabled, no observer exists, no event is constructed, and the
//! simulator's hot path is byte-identical to the uninstrumented build
//! (the golden-digest determinism tests pin this).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod block;
mod event;
mod flight;
mod hist;
mod obs;
mod registry;

pub use block::{ItemAvailability, Window};
pub use event::{EventKind, TraceEvent, TraceSink};
pub use hist::LatencyHistogram;
pub use obs::{Obs, ObsConfig, PhaseHists};
pub use registry::{Metric, MetricValue, Registry, RegistryError};
