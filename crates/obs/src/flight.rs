//! The flight recorder: a fixed-capacity ring of recent protocol
//! events per site, dumped as a readable timeline when something goes
//! wrong (crash injection, atomicity violation, panic).

use crate::event::TraceEvent;
use qbc_simnet::SiteId;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Per-site rings of the last `capacity` events.
#[derive(Debug, Default)]
pub(crate) struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<SiteId, VecDeque<TraceEvent>>,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: BTreeMap::new(),
        }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        let ring = self.rings.entry(ev.site).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// All retained events, merged across sites in time order (ties
    /// broken by site id, then per-site arrival order).
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.rings.values().flatten().copied().collect();
        all.sort_by_key(|e| (e.at, e.site));
        all
    }

    /// Renders the dump: a header with the reason, then one section per
    /// site with its retained timeline.
    pub(crate) fn dump(&self, reason: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== qbc-obs flight recorder ===");
        let _ = writeln!(out, "reason: {reason}");
        let total: usize = self.rings.values().map(|r| r.len()).sum();
        let _ = writeln!(
            out,
            "events retained: {total} across {} sites",
            self.rings.len()
        );
        for (site, ring) in &self.rings {
            let _ = writeln!(out, "--- site {} (last {} events) ---", site.0, ring.len());
            for ev in ring {
                let _ = writeln!(out, "{ev}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use qbc_core::TxnId;
    use qbc_simnet::Time;

    fn ev(at: u64, site: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: Time(at),
            site: SiteId(site),
            txn: Some(TxnId(1)),
            kind,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_n_per_site() {
        let mut fr = FlightRecorder::new(3);
        for t in 0..10 {
            fr.push(ev(t, 0, EventKind::VoteReqOut));
        }
        fr.push(ev(99, 1, EventKind::Crash));
        let evs = fr.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].at, Time(7)); // oldest surviving site-0 event
        assert_eq!(evs[3].kind, EventKind::Crash);
    }

    #[test]
    fn dump_has_header_and_per_site_sections() {
        let mut fr = FlightRecorder::new(8);
        fr.push(ev(5, 0, EventKind::VoteReqOut));
        fr.push(ev(6, 2, EventKind::VoteOut { yes: true }));
        let d = fr.dump("unit-test");
        assert!(d.contains("reason: unit-test"), "{d}");
        assert!(d.contains("--- site 0"), "{d}");
        assert!(d.contains("--- site 2"), "{d}");
        assert!(d.contains("vote-req-out"), "{d}");
    }
}
