//! The bundled observer: one [`Obs`] instance per cluster consumes the
//! protocol event stream and maintains every derived view at once —
//! flight-recorder rings, phase timers, blocking-window accounting,
//! and the message/force counters of Gray & Lamport's comparison
//! table.

use crate::block::{BlockingTracker, ItemAvailability};
use crate::event::{EventKind, TraceEvent, TraceSink};
use crate::flight::FlightRecorder;
use crate::hist::LatencyHistogram;
use crate::registry::Registry;
use qbc_core::{Decision, TxnId};
use qbc_simnet::{Duration, SiteId, Time};
use qbc_votes::ItemId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration of the observability layer. Off by default: with
/// `enabled = false` no [`Obs`] is constructed at all, so the
/// simulator's zero-allocation event loop and the golden digests are
/// untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch.
    pub enabled: bool,
    /// Events retained per site by the flight recorder.
    pub ring_capacity: usize,
    /// Store a flight-recorder dump automatically when a site crashes.
    pub dump_on_crash: bool,
    /// Chain a process panic hook that prints the flight recorder to
    /// stderr before unwinding (opt-in: the hook is process-global).
    pub panic_hook: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 256,
            dump_on_crash: true,
            panic_hook: false,
        }
    }
}

impl ObsConfig {
    /// The default configuration with the master switch on.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Phase timestamps of one in-flight transaction, kept at the
/// coordinating site only.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseTimes {
    coord: Option<SiteId>,
    submit: Option<Time>,
    vote_req: Option<Time>,
    prepare: Option<Time>,
    logged: Option<Time>,
}

/// Commit-latency decomposition histograms (committed transactions,
/// measured at the coordinating site).
#[derive(Clone, Debug, Default)]
pub struct PhaseHists {
    /// `VOTE-REQ` broadcast → first prepare (or decision force when the
    /// protocol has no prepare round): the vote-collection phase.
    pub vote: LatencyHistogram,
    /// Prepare broadcast → decision force: the prepare/ack phase.
    pub prepare: LatencyHistogram,
    /// Decision force → decision applied at the coordinator: the
    /// decision-distribution phase.
    pub decide: LatencyHistogram,
    /// Submission → decision applied: end-to-end commit latency.
    pub commit: LatencyHistogram,
}

#[derive(Debug, Default)]
struct Counters {
    events: u64,
    msgs_sent: u64,
    wal_forces: u64,
    wal_forced_records: u64,
    submitted: u64,
    committed: u64,
    aborted: u64,
    crashes: u64,
    recoveries: u64,
    elections: u64,
    termination_rounds: u64,
    paxos_recoveries: u64,
    blocked_declared: u64,
    outcome_discoveries: u64,
    snapshot_reads: u64,
    snapshot_reads_local: u64,
    snapshot_read_unavailable: u64,
    dumps: u64,
}

#[derive(Debug)]
struct Inner {
    flight: FlightRecorder,
    blocking: BlockingTracker,
    phases: BTreeMap<TxnId, PhaseTimes>,
    phase_hists: PhaseHists,
    counters: Counters,
    msgs_by_label: BTreeMap<&'static str, u64>,
    dumps: Vec<(String, String)>,
}

/// The observer. Shared (`Arc`) between every site of a cluster and,
/// on the threaded substrate, between threads; all state lives behind
/// one mutex, which is fine because instrumentation is config-gated
/// and off the simulator's hot path by default.
pub struct Obs {
    cfg: ObsConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// How many stored dumps [`Obs`] retains (oldest evicted first).
const MAX_STORED_DUMPS: usize = 16;

impl Obs {
    /// Creates an observer with the given configuration.
    pub fn new(cfg: ObsConfig) -> Self {
        let ring = cfg.ring_capacity;
        Obs {
            cfg,
            inner: Mutex::new(Inner {
                flight: FlightRecorder::new(ring),
                blocking: BlockingTracker::default(),
                phases: BTreeMap::new(),
                phase_hists: PhaseHists::default(),
                counters: Counters::default(),
                msgs_by_label: BTreeMap::new(),
                dumps: Vec::new(),
            }),
        }
    }

    /// The configuration this observer runs with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Survive a panic that unwound while the lock was held (the
        // panic hook still wants a dump).
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Declares an item's replication shape to the blocking tracker
    /// (called once per catalog item at cluster construction).
    pub fn register_item(&self, item: ItemId, copies: Vec<(SiteId, u32)>, read_quorum: u32) {
        self.lock()
            .blocking
            .register_item(item, copies, read_quorum);
    }

    /// Counts one network message leaving a site (`label` is the wire
    /// name, e.g. `VOTE-REQ`).
    pub fn note_msg(&self, label: &'static str) {
        let mut g = self.lock();
        g.counters.msgs_sent += 1;
        *g.msgs_by_label.entry(label).or_insert(0) += 1;
    }

    /// Total messages sent cluster-wide.
    pub fn msgs_sent(&self) -> u64 {
        self.lock().counters.msgs_sent
    }

    /// Per-wire-label message counts.
    pub fn msgs_by_label(&self) -> BTreeMap<&'static str, u64> {
        self.lock().msgs_by_label.clone()
    }

    /// Total WAL forces observed.
    pub fn wal_forces(&self) -> u64 {
        self.lock().counters.wal_forces
    }

    /// Total snapshot reads answered, with the locally-served share:
    /// `(total, local)`.
    pub fn snapshot_reads(&self) -> (u64, u64) {
        let g = self.lock();
        (g.counters.snapshot_reads, g.counters.snapshot_reads_local)
    }

    /// Snapshot reads that exhausted every copy site without an answer.
    pub fn snapshot_read_unavailable(&self) -> u64 {
        self.lock().counters.snapshot_read_unavailable
    }

    /// Paxos Commit leader-failover candidacies started cluster-wide.
    pub fn paxos_recoveries(&self) -> u64 {
        self.lock().counters.paxos_recoveries
    }

    /// Commit-latency decomposition histograms.
    pub fn phase_hists(&self) -> PhaseHists {
        self.lock().phase_hists.clone()
    }

    /// Pin-time histogram: how long each copy stayed X-locked by an
    /// undecided transaction.
    pub fn pin_time(&self) -> LatencyHistogram {
        self.lock().blocking.pin_time.clone()
    }

    /// Blocked-window histogram: per site, declared-blocked → decided.
    pub fn blocked_window(&self) -> LatencyHistogram {
        self.lock().blocking.blocked_window.clone()
    }

    /// Total virtual time some item lacked a read quorum, up to `now`.
    pub fn unavailable_total(&self, now: Time) -> Duration {
        Duration(self.lock().blocking.unavailable_total(now))
    }

    /// Number of read-unavailability windows opened so far.
    pub fn unavailable_windows(&self) -> u64 {
        self.lock().blocking.window_count()
    }

    /// Per-item unavailability windows.
    pub fn availability_report(&self) -> Vec<ItemAvailability> {
        self.lock().blocking.report()
    }

    /// Every event currently retained by the flight recorder, merged
    /// across sites in time order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().flight.events()
    }

    /// Renders and stores a flight-recorder dump.
    pub fn dump(&self, reason: &str) -> String {
        let mut g = self.lock();
        Self::dump_locked(&mut g, reason)
    }

    fn dump_locked(g: &mut Inner, reason: &str) -> String {
        let text = g.flight.dump(reason);
        g.counters.dumps += 1;
        if g.dumps.len() == MAX_STORED_DUMPS {
            g.dumps.remove(0);
        }
        g.dumps.push((reason.to_string(), text.clone()));
        text
    }

    /// Stored dumps as `(reason, text)`, oldest first.
    pub fn dumps(&self) -> Vec<(String, String)> {
        self.lock().dumps.clone()
    }

    /// Appends every observer metric to `r` (names prefixed `qbc_`,
    /// open windows measured to `now`).
    pub fn fill_registry(&self, now: Time, r: &mut Registry) {
        let g = self.lock();
        let c = &g.counters;
        r.counter(
            "qbc_obs_events_total",
            &[],
            "protocol trace events recorded",
            c.events,
        );
        for (label, n) in &g.msgs_by_label {
            r.counter(
                "qbc_msgs_sent_total",
                &[("msg", (*label).to_string())],
                "network messages sent, by wire label",
                *n,
            );
        }
        r.counter(
            "qbc_wal_forces_total",
            &[],
            "WAL forces observed",
            c.wal_forces,
        );
        r.counter(
            "qbc_wal_forced_records_total",
            &[],
            "records made durable by those forces",
            c.wal_forced_records,
        );
        r.counter(
            "qbc_txns_submitted_total",
            &[],
            "client submissions",
            c.submitted,
        );
        r.counter(
            "qbc_txns_committed_total",
            &[],
            "transactions committed (coordinator-site view)",
            c.committed,
        );
        r.counter(
            "qbc_txns_aborted_total",
            &[],
            "transactions aborted (coordinator-site view)",
            c.aborted,
        );
        r.counter("qbc_crashes_total", &[], "site crashes injected", c.crashes);
        r.counter(
            "qbc_recoveries_total",
            &[],
            "site recoveries completed",
            c.recoveries,
        );
        r.counter(
            "qbc_elections_total",
            &[],
            "termination elections started",
            c.elections,
        );
        r.counter(
            "qbc_termination_rounds_total",
            &[],
            "termination rounds started",
            c.termination_rounds,
        );
        r.counter(
            "qbc_paxos_recoveries_total",
            &[],
            "Paxos Commit leader-failover candidacies started",
            c.paxos_recoveries,
        );
        r.counter(
            "qbc_blocked_declared_total",
            &[],
            "blocked declarations by the termination protocol",
            c.blocked_declared,
        );
        r.counter(
            "qbc_outcome_discoveries_total",
            &[],
            "cross-shard outcome discovery requests sent",
            c.outcome_discoveries,
        );
        r.counter(
            "qbc_snapshot_reads_total",
            &[("served", "local".to_string())],
            "snapshot reads answered from the coordinator's own copy",
            c.snapshot_reads_local,
        );
        r.counter(
            "qbc_snapshot_reads_total",
            &[("served", "remote".to_string())],
            "snapshot reads answered by a remote copy site",
            c.snapshot_reads - c.snapshot_reads_local,
        );
        r.counter(
            "qbc_snapshot_read_unavailable_total",
            &[],
            "snapshot reads that exhausted every copy site",
            c.snapshot_read_unavailable,
        );
        r.counter(
            "qbc_flight_dumps_total",
            &[],
            "flight-recorder dumps taken",
            c.dumps,
        );
        r.counter(
            "qbc_read_unavailable_ticks_total",
            &[],
            "virtual time some item lacked a read quorum",
            g.blocking.unavailable_total(now),
        );
        r.counter(
            "qbc_read_unavailable_windows_total",
            &[],
            "read-unavailability windows opened",
            g.blocking.window_count(),
        );
        r.histogram(
            "qbc_pin_time_ticks",
            &[],
            "copy pin time: X-locked by an undecided transaction",
            &g.blocking.pin_time,
        );
        r.histogram(
            "qbc_blocked_window_ticks",
            &[],
            "declared-blocked to decided, per site",
            &g.blocking.blocked_window,
        );
        r.histogram(
            "qbc_phase_vote_ticks",
            &[],
            "vote-collection phase of committed transactions",
            &g.phase_hists.vote,
        );
        r.histogram(
            "qbc_phase_prepare_ticks",
            &[],
            "prepare/ack phase of committed transactions",
            &g.phase_hists.prepare,
        );
        r.histogram(
            "qbc_phase_decide_ticks",
            &[],
            "decision-distribution phase of committed transactions",
            &g.phase_hists.decide,
        );
        r.histogram(
            "qbc_commit_latency_ticks",
            &[],
            "submission to applied decision at the coordinator",
            &g.phase_hists.commit,
        );
    }

    /// Installs a process panic hook that prints this observer's flight
    /// recorder to stderr, then chains to the previous hook. Opt-in via
    /// [`ObsConfig::panic_hook`]; the hook holds only a weak reference,
    /// so a dropped observer silently stops printing.
    pub fn install_panic_hook(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(obs) = weak.upgrade() {
                // try_lock: the panic may have unwound mid-record.
                if let Ok(mut g) = obs.inner.try_lock() {
                    eprintln!("{}", Self::dump_locked(&mut g, "panic"));
                }
            }
            prev(info);
        }));
    }

    fn handle(&self, ev: TraceEvent) {
        let mut g = self.lock();
        g.counters.events += 1;
        match ev.kind {
            EventKind::Submitted { .. } => {
                g.counters.submitted += 1;
                if let Some(txn) = ev.txn {
                    let p = g.phases.entry(txn).or_default();
                    p.coord.get_or_insert(ev.site);
                    p.submit.get_or_insert(ev.at);
                }
            }
            EventKind::VoteReqOut => {
                if let Some(txn) = ev.txn {
                    let p = g.phases.entry(txn).or_default();
                    if *p.coord.get_or_insert(ev.site) == ev.site {
                        p.vote_req.get_or_insert(ev.at);
                    }
                }
            }
            EventKind::PrepareOut { .. } => {
                if let Some(txn) = ev.txn {
                    if let Some(p) = g.phases.get_mut(&txn) {
                        if p.coord == Some(ev.site) {
                            p.prepare.get_or_insert(ev.at);
                        }
                    }
                }
            }
            EventKind::DecisionLogged { .. } => {
                if let Some(txn) = ev.txn {
                    if let Some(p) = g.phases.get_mut(&txn) {
                        if p.coord == Some(ev.site) {
                            p.logged.get_or_insert(ev.at);
                        }
                    }
                }
            }
            EventKind::DecisionApplied { decision } => {
                if let Some(txn) = ev.txn {
                    g.blocking.decided(ev.at, ev.site, txn);
                    if let Some(p) = g.phases.get(&txn).copied() {
                        if p.coord == Some(ev.site) {
                            g.phases.remove(&txn);
                            match decision {
                                Decision::Commit => g.counters.committed += 1,
                                Decision::Abort => g.counters.aborted += 1,
                            }
                            if decision == Decision::Commit {
                                let h = &mut g.phase_hists;
                                if let Some(vr) = p.vote_req {
                                    let end = p.prepare.or(p.logged).unwrap_or(ev.at);
                                    h.vote.record(end.since(vr));
                                }
                                if let (Some(pr), Some(lg)) = (p.prepare, p.logged) {
                                    h.prepare.record(lg.since(pr));
                                }
                                if let Some(lg) = p.logged {
                                    h.decide.record(ev.at.since(lg));
                                }
                                if let Some(sub) = p.submit {
                                    h.commit.record(ev.at.since(sub));
                                }
                            }
                        }
                    }
                }
            }
            EventKind::PinStart { item } => {
                if let Some(txn) = ev.txn {
                    g.blocking.pin_start(ev.at, ev.site, txn, item);
                }
            }
            EventKind::PinEnd { item } => {
                g.blocking.pin_end(ev.at, ev.site, item);
            }
            EventKind::Blocked => {
                g.counters.blocked_declared += 1;
                if let Some(txn) = ev.txn {
                    g.blocking.blocked(ev.at, ev.site, txn);
                }
            }
            EventKind::SnapshotRead { local, .. } => {
                g.counters.snapshot_reads += 1;
                if local {
                    g.counters.snapshot_reads_local += 1;
                }
            }
            EventKind::SnapshotReadUnavailable { .. } => {
                g.counters.snapshot_read_unavailable += 1;
            }
            EventKind::PaxosProposalOut { .. } => {
                // The 2a broadcast is this protocol's prepare boundary:
                // it starts the acceptor force-log round, so it feeds
                // the same phase decomposition as `PrepareOut`.
                if let Some(txn) = ev.txn {
                    if let Some(p) = g.phases.get_mut(&txn) {
                        if p.coord == Some(ev.site) {
                            p.prepare.get_or_insert(ev.at);
                        }
                    }
                }
            }
            EventKind::PaxosRecoveryOut { .. } => g.counters.paxos_recoveries += 1,
            EventKind::ElectionStarted => g.counters.elections += 1,
            EventKind::TerminationRound { .. } => g.counters.termination_rounds += 1,
            EventKind::OutcomeDiscoveryOut => g.counters.outcome_discoveries += 1,
            EventKind::WalForce { records } => {
                g.counters.wal_forces += 1;
                g.counters.wal_forced_records += records;
            }
            EventKind::Crash => {
                g.counters.crashes += 1;
                g.blocking.crash(ev.at, ev.site);
            }
            EventKind::Recover => {
                g.counters.recoveries += 1;
                g.blocking.recover(ev.at, ev.site);
            }
            _ => {}
        }
        g.flight.push(ev);
        if ev.kind == EventKind::Crash && self.cfg.dump_on_crash {
            let reason = format!("crash injected at site {} (t{})", ev.site.0, ev.at.0);
            let _ = Self::dump_locked(&mut g, &reason);
        }
    }
}

impl TraceSink for Obs {
    fn record(&self, ev: TraceEvent) {
        self.handle(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_core::ProtocolKind;

    fn ev(at: u64, site: u32, txn: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: Time(at),
            site: SiteId(site),
            txn: Some(TxnId(txn)),
            kind,
        }
    }

    #[test]
    fn phase_decomposition_from_one_committed_timeline() {
        let obs = Obs::new(ObsConfig::on());
        obs.record(ev(
            0,
            0,
            1,
            EventKind::Submitted {
                protocol: ProtocolKind::QuorumCommit2,
            },
        ));
        obs.record(ev(1, 0, 1, EventKind::VoteReqOut));
        obs.record(ev(12, 0, 1, EventKind::PrepareOut { abort: false }));
        obs.record(ev(
            25,
            0,
            1,
            EventKind::DecisionLogged {
                decision: Decision::Commit,
            },
        ));
        obs.record(ev(
            30,
            0,
            1,
            EventKind::DecisionApplied {
                decision: Decision::Commit,
            },
        ));
        let h = obs.phase_hists();
        assert_eq!(h.vote.count(), 1);
        assert_eq!(h.vote.max(), Duration(11)); // 1 → 12
        assert_eq!(h.prepare.max(), Duration(13)); // 12 → 25
        assert_eq!(h.decide.max(), Duration(5)); // 25 → 30
        assert_eq!(h.commit.max(), Duration(30));
    }

    #[test]
    fn participant_decisions_do_not_pollute_coordinator_phases() {
        let obs = Obs::new(ObsConfig::on());
        obs.record(ev(
            0,
            0,
            1,
            EventKind::Submitted {
                protocol: ProtocolKind::TwoPhase,
            },
        ));
        obs.record(ev(1, 0, 1, EventKind::VoteReqOut));
        // Participant site 1 logs and applies first.
        obs.record(ev(
            8,
            1,
            1,
            EventKind::DecisionLogged {
                decision: Decision::Commit,
            },
        ));
        obs.record(ev(
            9,
            1,
            1,
            EventKind::DecisionApplied {
                decision: Decision::Commit,
            },
        ));
        obs.record(ev(
            10,
            0,
            1,
            EventKind::DecisionLogged {
                decision: Decision::Commit,
            },
        ));
        obs.record(ev(
            11,
            0,
            1,
            EventKind::DecisionApplied {
                decision: Decision::Commit,
            },
        ));
        let h = obs.phase_hists();
        assert_eq!(h.commit.count(), 1);
        assert_eq!(h.commit.max(), Duration(11)); // coordinator view, not t9
        assert_eq!(obs.msgs_sent(), 0);
    }

    #[test]
    fn crash_event_stores_a_dump_when_configured() {
        let obs = Obs::new(ObsConfig::on());
        obs.record(ev(5, 2, 1, EventKind::VoteOut { yes: true }));
        obs.record(TraceEvent {
            at: Time(9),
            site: SiteId(2),
            txn: None,
            kind: EventKind::Crash,
        });
        let dumps = obs.dumps();
        assert_eq!(dumps.len(), 1);
        assert!(
            dumps[0].0.contains("crash injected at site 2"),
            "{}",
            dumps[0].0
        );
        assert!(dumps[0].1.contains("vote-out"), "{}", dumps[0].1);
    }

    #[test]
    fn registry_snapshot_passes_its_own_validation() {
        let obs = Obs::new(ObsConfig::on());
        obs.register_item(ItemId(0), vec![(SiteId(0), 1), (SiteId(1), 1)], 1);
        obs.note_msg("VOTE-REQ");
        obs.record(ev(
            0,
            0,
            1,
            EventKind::Submitted {
                protocol: ProtocolKind::TwoPhase,
            },
        ));
        obs.record(TraceEvent {
            at: Time(3),
            site: SiteId(0),
            txn: None,
            kind: EventKind::WalForce { records: 4 },
        });
        let mut r = Registry::new();
        obs.fill_registry(Time(10), &mut r); // panics on invalid names
        assert!(r.metrics().iter().any(|m| m.name == "qbc_msgs_sent_total"));
        let json = r.json();
        assert!(json.contains("\"qbc_wal_forces_total\""), "{json}");
        let prom = r.prometheus_text();
        assert!(
            prom.contains("qbc_msgs_sent_total{msg=\"VOTE-REQ\"} 1"),
            "{prom}"
        );
    }
}
