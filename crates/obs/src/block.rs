//! Blocking-window and pin-time accounting — the paper's headline
//! quantities.
//!
//! *Pin time* is the virtual-time span one item copy is X-locked by an
//! undecided transaction (vote cast → decision applied at that site).
//! *Read unavailability* is the span during which the live, unpinned
//! copies of an item muster fewer than `r(x)` votes, so a Gifford
//! quorum read would return `Unavailable`. A *blocked window* is the
//! per-site span between the termination protocol declaring a
//! transaction blocked and the decision finally arriving — the
//! operator-facing cost of the blocking effect under coordinator
//! failure.

use crate::hist::LatencyHistogram;
use qbc_core::TxnId;
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::collections::{BTreeMap, BTreeSet};

/// One closed (or still-open) span of read unavailability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// When the item's available votes dropped below `r(x)`.
    pub from: Time,
    /// When a read quorum became available again (`None` while open).
    pub until: Option<Time>,
}

impl Window {
    /// Length of the window, measured to `now` while still open.
    pub fn length(&self, now: Time) -> qbc_simnet::Duration {
        self.until.unwrap_or(now).since(self.from)
    }
}

/// Per-item availability report.
#[derive(Clone, Debug)]
pub struct ItemAvailability {
    /// The item.
    pub item: ItemId,
    /// Every unavailability window observed, in time order.
    pub windows: Vec<Window>,
}

impl ItemAvailability {
    /// Total unavailable virtual time up to `now`.
    pub fn unavailable(&self, now: Time) -> qbc_simnet::Duration {
        qbc_simnet::Duration(self.windows.iter().map(|w| w.length(now).0).sum())
    }
}

#[derive(Clone, Debug)]
struct ItemState {
    copies: Vec<(SiteId, u32)>,
    read_quorum: u32,
    /// Live pins: which transaction holds the copy at each site, and
    /// since when.
    pinned: BTreeMap<SiteId, (TxnId, Time)>,
    open: Option<Time>,
    windows: Vec<Window>,
}

impl ItemState {
    fn available_votes(&self, down: &BTreeSet<SiteId>) -> u32 {
        self.copies
            .iter()
            .filter(|(s, _)| !down.contains(s) && !self.pinned.contains_key(s))
            .map(|(_, w)| w)
            .sum()
    }

    fn reevaluate(&mut self, now: Time, down: &BTreeSet<SiteId>) {
        let ok = self.available_votes(down) >= self.read_quorum;
        match (ok, self.open) {
            (false, None) => self.open = Some(now),
            (true, Some(from)) => {
                self.windows.push(Window {
                    from,
                    until: Some(now),
                });
                self.open = None;
            }
            _ => {}
        }
    }
}

/// Tracks copy pins, site liveness, and the derived per-item
/// unavailability windows and per-transaction blocked windows.
#[derive(Debug, Default)]
pub(crate) struct BlockingTracker {
    items: BTreeMap<ItemId, ItemState>,
    down: BTreeSet<SiteId>,
    /// When each (site, txn) was first declared blocked.
    blocked_since: BTreeMap<(SiteId, TxnId), Time>,
    pub(crate) pin_time: LatencyHistogram,
    pub(crate) blocked_window: LatencyHistogram,
}

impl BlockingTracker {
    pub(crate) fn register_item(
        &mut self,
        item: ItemId,
        copies: Vec<(SiteId, u32)>,
        read_quorum: u32,
    ) {
        self.items.entry(item).or_insert(ItemState {
            copies,
            read_quorum,
            pinned: BTreeMap::new(),
            open: None,
            windows: Vec::new(),
        });
    }

    pub(crate) fn pin_start(&mut self, now: Time, site: SiteId, txn: TxnId, item: ItemId) {
        let down = &self.down;
        if let Some(st) = self.items.get_mut(&item) {
            st.pinned.insert(site, (txn, now));
            st.reevaluate(now, down);
        }
    }

    pub(crate) fn pin_end(&mut self, now: Time, site: SiteId, item: ItemId) {
        let down = &self.down;
        if let Some(st) = self.items.get_mut(&item) {
            if let Some((_, since)) = st.pinned.remove(&site) {
                self.pin_time.record(now.since(since));
                st.reevaluate(now, down);
            }
        }
    }

    pub(crate) fn crash(&mut self, now: Time, site: SiteId) {
        self.down.insert(site);
        // A crash wipes the site's lock table: its pins evaporate
        // (without contributing pin-time — the copy is simply gone
        // until recovery re-pins it from the WAL).
        let down = &self.down;
        for st in self.items.values_mut() {
            st.pinned.remove(&site);
            st.reevaluate(now, down);
        }
        // Volatile blocked state is also gone.
        self.blocked_since.retain(|(s, _), _| *s != site);
    }

    pub(crate) fn recover(&mut self, now: Time, site: SiteId) {
        self.down.remove(&site);
        let down = &self.down;
        for st in self.items.values_mut() {
            st.reevaluate(now, down);
        }
    }

    pub(crate) fn blocked(&mut self, now: Time, site: SiteId, txn: TxnId) {
        self.blocked_since.entry((site, txn)).or_insert(now);
    }

    pub(crate) fn decided(&mut self, now: Time, site: SiteId, txn: TxnId) {
        if let Some(since) = self.blocked_since.remove(&(site, txn)) {
            self.blocked_window.record(now.since(since));
        }
    }

    /// Count of *closed* unavailability windows plus currently open ones.
    pub(crate) fn window_count(&self) -> u64 {
        self.items
            .values()
            .map(|s| s.windows.len() as u64 + u64::from(s.open.is_some()))
            .sum()
    }

    /// Total unavailable ticks across items, open windows measured to
    /// `now`.
    pub(crate) fn unavailable_total(&self, now: Time) -> u64 {
        self.items
            .values()
            .map(|s| {
                s.windows.iter().map(|w| w.length(now).0).sum::<u64>()
                    + s.open.map_or(0, |from| now.since(from).0)
            })
            .sum()
    }

    /// Per-item report (open windows included with `until: None`).
    pub(crate) fn report(&self) -> Vec<ItemAvailability> {
        self.items
            .iter()
            .map(|(&item, st)| {
                let mut windows = st.windows.clone();
                if let Some(from) = st.open {
                    windows.push(Window { from, until: None });
                }
                ItemAvailability { item, windows }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> BlockingTracker {
        let mut t = BlockingTracker::default();
        // Item 0: three single-vote copies, r = 2.
        t.register_item(
            ItemId(0),
            vec![(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)],
            2,
        );
        t
    }

    #[test]
    fn window_opens_when_pins_break_the_read_quorum() {
        let mut t = tracker();
        t.pin_start(Time(10), SiteId(0), TxnId(1), ItemId(0));
        assert_eq!(t.unavailable_total(Time(20)), 0); // 2 of 3 free: r met
        t.pin_start(Time(20), SiteId(1), TxnId(1), ItemId(0));
        assert_eq!(t.window_count(), 1); // 1 of 3 free: r broken
        t.pin_end(Time(50), SiteId(1), ItemId(0));
        t.pin_end(Time(55), SiteId(0), ItemId(0));
        assert_eq!(t.unavailable_total(Time(100)), 30); // [20, 50)
        assert_eq!(t.window_count(), 1);
        let rep = t.report();
        assert_eq!(
            rep[0].windows,
            vec![Window {
                from: Time(20),
                until: Some(Time(50))
            }]
        );
    }

    #[test]
    fn crash_counts_as_unavailable_copy_and_drops_pins() {
        let mut t = tracker();
        t.pin_start(Time(5), SiteId(1), TxnId(1), ItemId(0));
        t.crash(Time(10), SiteId(0)); // down copy + pinned copy: 1 vote left
        assert_eq!(t.window_count(), 1);
        t.recover(Time(40), SiteId(0));
        // Site 1 still pinned: 2 of 3 available, quorum restored.
        assert_eq!(t.unavailable_total(Time(40)), 30);
        // The crashed site's own pin would have been dropped silently.
        assert_eq!(t.pin_time.count(), 0);
        t.pin_end(Time(41), SiteId(1), ItemId(0));
        assert_eq!(t.pin_time.count(), 1);
    }

    #[test]
    fn blocked_windows_measure_declare_to_decide() {
        let mut t = tracker();
        t.blocked(Time(100), SiteId(1), TxnId(7));
        t.blocked(Time(120), SiteId(1), TxnId(7)); // re-declare keeps the first
        t.decided(Time(400), SiteId(1), TxnId(7));
        assert_eq!(t.blocked_window.count(), 1);
        assert_eq!(t.blocked_window.max(), qbc_simnet::Duration(300));
        // A decision without a prior blocked declaration records nothing.
        t.decided(Time(500), SiteId(2), TxnId(8));
        assert_eq!(t.blocked_window.count(), 1);
    }

    #[test]
    fn unmatched_pin_end_is_ignored() {
        let mut t = tracker();
        t.pin_end(Time(5), SiteId(0), ItemId(0));
        assert_eq!(t.pin_time.count(), 0);
        assert_eq!(t.window_count(), 0);
    }
}
