//! The protocol-phase event model.
//!
//! Every observable step of the commit, termination and cross-shard
//! protocols maps onto one [`EventKind`]. The site node emits a
//! [`TraceEvent`] per step into a [`TraceSink`]; the sink decides what
//! to do with it — the bundled [`crate::Obs`] feeds flight-recorder
//! rings, phase timers, and the blocking-window tracker from the same
//! stream.

use qbc_core::{Decision, ProtocolKind, TxnId};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::fmt;

/// One observable protocol step at one site.
///
/// The `Out`/`In` suffixes name the direction from the emitting site's
/// point of view: `VoteOut` is *this* site casting its vote,
/// `VoteIn` is a coordinator receiving one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A client submission arrived; this site coordinates.
    Submitted {
        /// Commit protocol the transaction runs.
        protocol: ProtocolKind,
    },
    /// Coordinator broadcast `VOTE-REQ` (vote solicitation).
    VoteReqOut,
    /// This site cast its vote.
    VoteOut {
        /// True = yes (entered W), false = no.
        yes: bool,
    },
    /// Coordinator received a vote.
    VoteIn {
        /// The vote's verdict.
        yes: bool,
    },
    /// Coordinator broadcast a prepare (`abort` distinguishes
    /// `PREPARE-TO-ABORT` from `PREPARE-TO-COMMIT`).
    PrepareOut {
        /// True for `PREPARE-TO-ABORT`.
        abort: bool,
    },
    /// The commit point: the coordinating site is about to force the
    /// commit decision — past this instant the transaction can no
    /// longer abort.
    CommitPoint,
    /// A cross-shard branch reached its in-shard commit point and is
    /// *held* there pending the top-level decision.
    Held,
    /// A terminal decision record is being forced to the WAL.
    DecisionLogged {
        /// The outcome being made durable.
        decision: Decision,
    },
    /// The decision command (`COMMIT`/`ABORT`) was broadcast.
    DecisionOut {
        /// The outcome announced.
        decision: Decision,
    },
    /// This site applied the decision locally (updates installed on
    /// commit, locks released either way).
    DecisionApplied {
        /// The outcome applied.
        decision: Decision,
    },
    /// Branch coordinator cast its cross-shard vote upward.
    XVoteOut {
        /// True when the branch is held at its commit point.
        yes: bool,
    },
    /// Cross-shard coordinator announced the top-level outcome to a
    /// branch.
    XDecideOut {
        /// The top-level outcome.
        decision: Decision,
    },
    /// An orphaned branch site asked the cross-shard coordinator for
    /// the outcome (`X-OUTCOME-REQ`).
    OutcomeDiscoveryOut,
    /// Paxos Commit leader/candidate broadcast its Phase-2a vote batch
    /// — the phase boundary equivalent to a prepare broadcast (the
    /// acceptor force-logs that follow are this protocol's prepares).
    PaxosProposalOut {
        /// The proposing ballot (0 = the original coordinator).
        bal: u64,
    },
    /// A Paxos Commit recovery candidate broadcast Phase 1a: leader
    /// failover started at this site (this engine's replacement for a
    /// termination election).
    PaxosRecoveryOut {
        /// The candidate's ballot (> 0).
        bal: u64,
    },
    /// This site started a termination election (coordinator silence).
    ElectionStarted,
    /// This site, as elected termination coordinator, started a
    /// termination round.
    TerminationRound {
        /// Round number (re-entrant rounds increment).
        round: u64,
    },
    /// The termination protocol declared the transaction blocked here.
    Blocked,
    /// A local copy was X-locked by an undecided transaction (pin
    /// start).
    PinStart {
        /// The pinned item.
        item: ItemId,
    },
    /// The pin on a local copy was released by the decision.
    PinEnd {
        /// The released item.
        item: ItemId,
    },
    /// A snapshot read was answered from the multi-version store at
    /// the shard watermark — locks and pins never refused it.
    SnapshotRead {
        /// Item served.
        item: ItemId,
        /// True when the coordinator answered from its own copy
        /// (no network round at all).
        local: bool,
    },
    /// A snapshot read exhausted every copy site without an answer
    /// (crashes or partition; pinned copies can never cause this).
    SnapshotReadUnavailable {
        /// Item requested.
        item: ItemId,
    },
    /// The WAL device completed a force.
    WalForce {
        /// Records made durable by this force.
        records: u64,
    },
    /// This site crashed (volatile state lost).
    Crash,
    /// This site completed crash recovery.
    Recover,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Submitted { protocol } => write!(f, "submitted proto={protocol:?}"),
            EventKind::VoteReqOut => write!(f, "vote-req-out"),
            EventKind::VoteOut { yes } => write!(f, "vote-out yes={yes}"),
            EventKind::VoteIn { yes } => write!(f, "vote-in yes={yes}"),
            EventKind::PrepareOut { abort: false } => write!(f, "prepare-commit-out"),
            EventKind::PrepareOut { abort: true } => write!(f, "prepare-abort-out"),
            EventKind::CommitPoint => write!(f, "commit-point"),
            EventKind::Held => write!(f, "held-at-commit-point"),
            EventKind::DecisionLogged { decision } => write!(f, "decision-logged {decision:?}"),
            EventKind::DecisionOut { decision } => write!(f, "decision-out {decision:?}"),
            EventKind::DecisionApplied { decision } => write!(f, "decision-applied {decision:?}"),
            EventKind::XVoteOut { yes } => write!(f, "x-vote-out yes={yes}"),
            EventKind::XDecideOut { decision } => write!(f, "x-decide-out {decision:?}"),
            EventKind::OutcomeDiscoveryOut => write!(f, "x-outcome-req-out"),
            EventKind::PaxosProposalOut { bal } => write!(f, "paxos-2a-out bal={bal}"),
            EventKind::PaxosRecoveryOut { bal } => write!(f, "paxos-1a-out bal={bal}"),
            EventKind::ElectionStarted => write!(f, "election-started"),
            EventKind::TerminationRound { round } => write!(f, "termination-round {round}"),
            EventKind::Blocked => write!(f, "blocked"),
            EventKind::PinStart { item } => write!(f, "pin-start {item}"),
            EventKind::PinEnd { item } => write!(f, "pin-end {item}"),
            EventKind::SnapshotRead { item, local } => {
                write!(f, "snapshot-read {item} local={local}")
            }
            EventKind::SnapshotReadUnavailable { item } => {
                write!(f, "snapshot-read-unavailable {item}")
            }
            EventKind::WalForce { records } => write!(f, "wal-force records={records}"),
            EventKind::Crash => write!(f, "crash"),
            EventKind::Recover => write!(f, "recover"),
        }
    }
}

/// One timestamped protocol event at one site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the step.
    pub at: Time,
    /// The site where it happened.
    pub site: SiteId,
    /// The transaction it concerns (`None` for site-level events such
    /// as crash, recovery, or a WAL force serving a whole batch).
    pub txn: Option<TxnId>,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:<8} s{:<3} ", self.at.0, self.site.0)?;
        match self.txn {
            Some(t) => write!(f, "txn={:<5} ", t.0)?,
            None => write!(f, "{:10}", "-")?,
        }
        write!(f, "{}", self.kind)
    }
}

/// A consumer of protocol trace events.
///
/// Implementations must be cheap and must not call back into the
/// emitting node. `&self` because sinks are shared (`Arc`) between
/// sites and, on the threaded substrate, between threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, ev: TraceEvent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_one_line() {
        let ev = TraceEvent {
            at: Time(42),
            site: SiteId(3),
            txn: Some(TxnId(7)),
            kind: EventKind::VoteOut { yes: true },
        };
        let s = ev.to_string();
        assert!(s.contains("t42"), "{s}");
        assert!(s.contains("s3"), "{s}");
        assert!(s.contains("txn=7"), "{s}");
        assert!(s.contains("vote-out yes=true"), "{s}");
    }
}
