//! Simulation traces and network statistics.
//!
//! Every externally observable event of a run is appended to a trace:
//! sends, deliveries, drops (with reason), timer firings, crashes,
//! recoveries and topology changes. Experiments derive message counts and
//! timing series from the trace; tests use it to assert on schedules.

use crate::ids::SiteId;
use crate::time::Time;
use crate::topology::DropReason;
use std::collections::BTreeMap;
use std::fmt;

/// One observable event of a simulation run.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TraceEvent {
    /// A message was handed to the network.
    Sent {
        at: Time,
        from: SiteId,
        to: SiteId,
        label: &'static str,
    },
    /// A message reached its destination and was processed.
    Delivered {
        at: Time,
        from: SiteId,
        to: SiteId,
        label: &'static str,
    },
    /// A message was dropped.
    Dropped {
        at: Time,
        from: SiteId,
        to: SiteId,
        label: &'static str,
        reason: DropReason,
    },
    /// A timer fired at a site.
    TimerFired { at: Time, site: SiteId },
    /// A site crashed.
    Crashed { at: Time, site: SiteId },
    /// A site recovered.
    Recovered { at: Time, site: SiteId },
    /// The network was partitioned (component count recorded).
    Partitioned { at: Time, components: usize },
    /// The network healed to full connectivity.
    Healed { at: Time },
    /// Free-form annotation from a process.
    Note {
        at: Time,
        site: SiteId,
        text: String,
    },
}

impl TraceEvent {
    /// Virtual time at which the event occurred.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Crashed { at, .. }
            | TraceEvent::Recovered { at, .. }
            | TraceEvent::Partitioned { at, .. }
            | TraceEvent::Healed { at }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

/// Aggregate network statistics for a run.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to a live process.
    pub delivered: u64,
    /// Messages dropped because sender and receiver were partitioned.
    pub dropped_partitioned: u64,
    /// Messages dropped by an adversarial link block.
    pub dropped_link_blocked: u64,
    /// Messages dropped by random loss.
    pub dropped_random_loss: u64,
    /// Messages dropped because the receiver was crashed.
    pub dropped_receiver_down: u64,
    /// Messages dropped because the sender was crashed.
    pub dropped_sender_down: u64,
    /// Per-label `(label, sent, delivered)` counters. A message
    /// vocabulary has a dozen-odd labels, all `'static` literals, so a
    /// linear scan with a pointer-equality fast path beats a map on the
    /// per-message path (this is bumped twice per delivered message).
    by_label: Vec<(&'static str, u64, u64)>,
    /// Timers fired.
    pub timers_fired: u64,
}

impl NetStats {
    /// Index of the label's counter slot, appending one if new.
    fn label_slot(&mut self, label: &'static str) -> usize {
        if let Some(i) = self
            .by_label
            .iter()
            .position(|&(l, _, _)| std::ptr::eq(l, label) || l == label)
        {
            i
        } else {
            self.by_label.push((label, 0, 0));
            self.by_label.len() - 1
        }
    }

    pub(crate) fn record_sent(&mut self, label: &'static str) {
        self.sent += 1;
        let i = self.label_slot(label);
        self.by_label[i].1 += 1;
    }

    pub(crate) fn record_delivered(&mut self, label: &'static str) {
        self.delivered += 1;
        let i = self.label_slot(label);
        self.by_label[i].2 += 1;
    }

    /// Sends per message label, in label order.
    pub fn sent_by_label(&self) -> BTreeMap<&'static str, u64> {
        self.by_label
            .iter()
            .filter(|&&(_, s, _)| s > 0)
            .map(|&(l, s, _)| (l, s))
            .collect()
    }

    /// Deliveries per message label, in label order.
    pub fn delivered_by_label(&self) -> BTreeMap<&'static str, u64> {
        self.by_label
            .iter()
            .filter(|&&(_, _, d)| d > 0)
            .map(|&(l, _, d)| (l, d))
            .collect()
    }

    /// Deliveries recorded for one label.
    pub fn delivered_of(&self, label: &str) -> u64 {
        self.by_label
            .iter()
            .find(|&&(l, _, _)| l == label)
            .map_or(0, |&(_, _, d)| d)
    }

    pub(crate) fn record_dropped(&mut self, reason: DropReason) {
        match reason {
            DropReason::Partitioned => self.dropped_partitioned += 1,
            DropReason::LinkBlocked => self.dropped_link_blocked += 1,
            DropReason::RandomLoss => self.dropped_random_loss += 1,
            DropReason::ReceiverDown => self.dropped_receiver_down += 1,
            DropReason::SenderDown => self.dropped_sender_down += 1,
        }
    }

    /// Total number of dropped messages across all reasons.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_partitioned
            + self.dropped_link_blocked
            + self.dropped_random_loss
            + self.dropped_receiver_down
            + self.dropped_sender_down
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent={} delivered={} dropped={} (partition={} link={} loss={} rx-down={} tx-down={}) timers={}",
            self.sent,
            self.delivered,
            self.dropped_total(),
            self.dropped_partitioned,
            self.dropped_link_blocked,
            self.dropped_random_loss,
            self.dropped_receiver_down,
            self.dropped_sender_down,
            self.timers_fired,
        )?;
        for (label, n) in self.delivered_by_label() {
            writeln!(f, "  {label}: {n} delivered")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_by_label() {
        let mut s = NetStats::default();
        s.record_sent("VOTE-REQ");
        s.record_sent("VOTE-REQ");
        s.record_delivered("VOTE-REQ");
        s.record_dropped(DropReason::Partitioned);
        s.record_dropped(DropReason::RandomLoss);
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped_total(), 2);
        assert_eq!(s.sent_by_label()["VOTE-REQ"], 2);
        assert_eq!(s.delivered_by_label()["VOTE-REQ"], 1);
        assert_eq!(s.delivered_of("VOTE-REQ"), 1);
        assert_eq!(s.delivered_of("NOPE"), 0);
    }

    #[test]
    fn trace_event_time_accessor() {
        let e = TraceEvent::Crashed {
            at: Time(9),
            site: SiteId(2),
        };
        assert_eq!(e.at(), Time(9));
        let e = TraceEvent::Healed { at: Time(4) };
        assert_eq!(e.at(), Time(4));
    }

    #[test]
    fn display_is_humane() {
        let mut s = NetStats::default();
        s.record_sent("X");
        s.record_delivered("X");
        let text = s.to_string();
        assert!(text.contains("sent=1"));
        assert!(text.contains("X: 1 delivered"));
    }
}
