//! A real-time, multi-threaded transport for [`Process`] nodes.
//!
//! The protocol engines in this repository are sans-IO: the same node code
//! that runs on the deterministic simulator runs here on real OS threads
//! with crossbeam channels. One thread per site executes the node's
//! handlers; a delayer thread imposes per-message transit delays; a shared
//! [`Topology`] applies partitions, link blocks and loss exactly as the
//! simulator does.
//!
//! Virtual [`Time`]/[`crate::Duration`] ticks are mapped to milliseconds.
//!
//! This runtime exists to demonstrate substrate independence; correctness
//! evidence for the protocols comes from the deterministic simulator,
//! where failure schedules are reproducible.

use crate::ids::{SiteId, TimerId};
use crate::process::{Ctx, Effect, Process};
use crate::time::Time;
use crate::topology::Topology;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

enum Input<M> {
    Msg { from: SiteId, msg: M },
    Stop,
}

struct Delayed<M> {
    due: Instant,
    seq: u64,
    to: SiteId,
    from: SiteId,
    msg: M,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

struct PendingTimer<T> {
    due: Instant,
    id: TimerId,
    timer: T,
}

impl<T> PartialEq for PendingTimer<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl<T> Eq for PendingTimer<T> {}
impl<T> PartialOrd for PendingTimer<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PendingTimer<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.id).cmp(&(self.due, self.id))
    }
}

/// A running multi-threaded network of [`Process`] nodes.
pub struct ThreadedNet<N: Process> {
    site_handles: Vec<(SiteId, JoinHandle<N>)>,
    site_senders: HashMap<SiteId, Sender<Input<N::Msg>>>,
    delayer_handle: Option<JoinHandle<()>>,
    delayer_tx: Sender<DelayerCmd<N::Msg>>,
    topology: Arc<Mutex<Topology>>,
}

enum DelayerCmd<M> {
    Send {
        from: SiteId,
        to: SiteId,
        msg: M,
        delay_ms: u64,
    },
    Stop,
}

/// Configuration for the threaded runtime.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Fixed per-message transit delay, in milliseconds.
    pub delay_ms: u64,
    /// RNG seed for per-site randomness (loss draws use a separate seed).
    pub seed: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            delay_ms: 1,
            seed: 0,
        }
    }
}

impl<N> ThreadedNet<N>
where
    N: Process + Send + 'static,
    N::Msg: Send + 'static,
    N::Timer: Send + 'static,
{
    /// Spawns the network: one thread per node plus a delayer thread.
    /// Each node's `on_start` runs before its event loop begins.
    pub fn spawn(config: ThreadedConfig, nodes: impl IntoIterator<Item = (SiteId, N)>) -> Self {
        let nodes: Vec<(SiteId, N)> = nodes.into_iter().collect();
        let topology = Arc::new(Mutex::new(Topology::fully_connected(
            nodes.iter().map(|(s, _)| *s),
        )));
        let mut site_senders: HashMap<SiteId, Sender<Input<N::Msg>>> = HashMap::new();
        let mut receivers: Vec<(SiteId, Receiver<Input<N::Msg>>)> = Vec::new();
        for (s, _) in &nodes {
            let (tx, rx) = unbounded();
            site_senders.insert(*s, tx);
            receivers.push((*s, rx));
        }

        // Delayer thread: receives (from,to,msg,delay) and releases messages
        // to the destination inbox once due, applying topology at release.
        let (delayer_tx, delayer_rx) = bounded::<DelayerCmd<N::Msg>>(1024);
        let delayer_topology = Arc::clone(&topology);
        let delayer_senders = site_senders.clone();
        let delayer_seed = config.seed ^ 0xD1CE;
        let delayer_handle = std::thread::spawn(move || {
            let mut heap: BinaryHeap<Delayed<N::Msg>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut rng = SmallRng::seed_from_u64(delayer_seed);
            loop {
                let timeout = heap
                    .peek()
                    .map(|d| d.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(std::time::Duration::from_millis(50));
                match delayer_rx.recv_timeout(timeout) {
                    Ok(DelayerCmd::Send {
                        from,
                        to,
                        msg,
                        delay_ms,
                    }) => {
                        heap.push(Delayed {
                            due: Instant::now() + std::time::Duration::from_millis(delay_ms),
                            seq,
                            to,
                            from,
                            msg,
                        });
                        seq += 1;
                    }
                    Ok(DelayerCmd::Stop) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                let now = Instant::now();
                while heap.peek().map(|d| d.due <= now).unwrap_or(false) {
                    let d = heap.pop().expect("peeked");
                    let ok = delayer_topology
                        .lock()
                        .route(d.from, d.to, &mut rng)
                        .is_ok();
                    if ok {
                        if let Some(tx) = delayer_senders.get(&d.to) {
                            let _ = tx.send(Input::Msg {
                                from: d.from,
                                msg: d.msg,
                            });
                        }
                    }
                }
            }
        });

        let mut site_handles = Vec::new();
        for ((site, mut node), (_s2, rx)) in nodes.into_iter().zip(receivers) {
            let dtx = delayer_tx.clone();
            let delay_ms = config.delay_ms;
            let seed = config.seed ^ (site.0 as u64).wrapping_mul(0x9E37_79B9);
            let handle = std::thread::spawn(move || {
                let start = Instant::now();
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut next_timer_id: u64 = (site.0 as u64) << 32;
                let mut timers: BinaryHeap<PendingTimer<N::Timer>> = BinaryHeap::new();
                let mut cancelled: std::collections::HashSet<TimerId> =
                    std::collections::HashSet::new();

                let virt_now = |start: Instant| Time(start.elapsed().as_millis() as u64);
                #[allow(clippy::type_complexity)]
                let run_handler =
                    |node: &mut N,
                     rng: &mut SmallRng,
                     next_timer_id: &mut u64,
                     timers: &mut BinaryHeap<PendingTimer<N::Timer>>,
                     cancelled: &mut std::collections::HashSet<TimerId>,
                     f: &mut dyn FnMut(&mut N, &mut Ctx<'_, N::Msg, N::Timer>)| {
                        let mut effects: Vec<Effect<N::Msg, N::Timer>> = Vec::new();
                        {
                            let mut ctx = Ctx {
                                self_id: site,
                                now: virt_now(start),
                                rng,
                                effects: &mut effects,
                                next_timer_id,
                            };
                            f(node, &mut ctx);
                        }
                        for eff in effects {
                            match eff {
                                Effect::Send { to, msg } => {
                                    let _ = dtx.send(DelayerCmd::Send {
                                        from: site,
                                        to,
                                        msg,
                                        delay_ms,
                                    });
                                }
                                Effect::SetTimer { id, delay, timer } => {
                                    timers.push(PendingTimer {
                                        due: Instant::now()
                                            + std::time::Duration::from_millis(delay.0),
                                        id,
                                        timer,
                                    });
                                }
                                Effect::CancelTimer(id) => {
                                    cancelled.insert(id);
                                }
                                Effect::Annotate(_) => {}
                            }
                        }
                    };

                run_handler(
                    &mut node,
                    &mut rng,
                    &mut next_timer_id,
                    &mut timers,
                    &mut cancelled,
                    &mut |n, ctx| n.on_start(ctx),
                );

                loop {
                    let timeout = timers
                        .peek()
                        .map(|t| t.due.saturating_duration_since(Instant::now()))
                        .unwrap_or(std::time::Duration::from_millis(50));
                    match rx.recv_timeout(timeout) {
                        Ok(Input::Msg { from, msg }) => {
                            let mut m = Some(msg);
                            run_handler(
                                &mut node,
                                &mut rng,
                                &mut next_timer_id,
                                &mut timers,
                                &mut cancelled,
                                &mut |n, ctx| {
                                    if let Some(msg) = m.take() {
                                        n.on_message(ctx, from, msg);
                                    }
                                },
                            );
                        }
                        Ok(Input::Stop) => return node,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => return node,
                    }
                    let now = Instant::now();
                    while timers.peek().map(|t| t.due <= now).unwrap_or(false) {
                        let t = timers.pop().expect("peeked");
                        if cancelled.remove(&t.id) {
                            continue;
                        }
                        let mut payload = Some(t.timer);
                        let id = t.id;
                        run_handler(
                            &mut node,
                            &mut rng,
                            &mut next_timer_id,
                            &mut timers,
                            &mut cancelled,
                            &mut |n, ctx| {
                                if let Some(p) = payload.take() {
                                    n.on_timer(ctx, id, p);
                                }
                            },
                        );
                    }
                }
            });
            site_handles.push((site, handle));
        }

        ThreadedNet {
            site_handles,
            site_senders,
            delayer_handle: Some(delayer_handle),
            delayer_tx,
            topology,
        }
    }

    /// Injects a message into a node from a virtual external client.
    pub fn inject(&self, from: SiteId, to: SiteId, msg: N::Msg) {
        if let Some(tx) = self.site_senders.get(&to) {
            let _ = tx.send(Input::Msg { from, msg });
        }
    }

    /// Applies a partition to the live network.
    pub fn partition(&self, components: &[Vec<SiteId>]) {
        self.topology.lock().partition(components);
    }

    /// Heals all partitions.
    pub fn heal(&self) {
        self.topology.lock().heal();
    }

    /// Stops all threads and returns the final node states.
    pub fn shutdown(mut self) -> Vec<(SiteId, N)> {
        for tx in self.site_senders.values() {
            let _ = tx.send(Input::Stop);
        }
        let _ = self.delayer_tx.send(DelayerCmd::Stop);
        if let Some(h) = self.delayer_handle.take() {
            let _ = h.join();
        }
        self.site_handles
            .drain(..)
            .map(|(s, h)| (s, h.join().expect("site thread panicked")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Label;
    use crate::time::Duration;

    #[derive(Clone, Debug)]
    enum M {
        Ping,
        Pong,
    }
    impl Label for M {
        fn label(&self) -> &'static str {
            match self {
                M::Ping => "PING",
                M::Pong => "PONG",
            }
        }
    }

    #[derive(Default)]
    struct Node {
        pongs: u32,
        timer_fired: bool,
    }

    impl Process for Node {
        type Msg = M;
        type Timer = ();
        fn on_message(&mut self, ctx: &mut Ctx<'_, M, ()>, from: SiteId, msg: M) {
            match msg {
                M::Ping => ctx.send(from, M::Pong),
                M::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {
            self.timer_fired = true;
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
            if ctx.id() == SiteId(0) {
                ctx.send(SiteId(1), M::Ping);
                ctx.set_timer(Duration(5), ());
            }
        }
    }

    #[test]
    fn ping_pong_over_threads() {
        let net = ThreadedNet::spawn(
            ThreadedConfig::default(),
            [(SiteId(0), Node::default()), (SiteId(1), Node::default())],
        );
        std::thread::sleep(std::time::Duration::from_millis(150));
        let nodes = net.shutdown();
        let n0 = &nodes.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(n0.pongs, 1);
        assert!(n0.timer_fired);
    }

    #[test]
    fn partition_blocks_threaded_traffic() {
        let net = ThreadedNet::spawn(
            ThreadedConfig::default(),
            [(SiteId(0), Node::default()), (SiteId(1), Node::default())],
        );
        net.partition(&[vec![SiteId(0)], vec![SiteId(1)]]);
        net.inject(SiteId(1), SiteId(0), M::Ping); // s0 will answer to s1, dropped
        std::thread::sleep(std::time::Duration::from_millis(100));
        net.heal();
        let nodes = net.shutdown();
        let n1 = &nodes.iter().find(|(s, _)| *s == SiteId(1)).unwrap().1;
        assert_eq!(n1.pongs, 0, "pong must be dropped across the partition");
    }
}
