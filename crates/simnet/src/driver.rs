//! A single-process driver for embedding a [`Process`] in an external
//! event loop.
//!
//! The deterministic [`crate::Sim`] and the threaded transport both
//! drive processes through the crate-private [`Effect`] buffer. A
//! [`NodeDriver`] packages that same contract — build a [`Ctx`], invoke
//! a handler, then apply the buffered effects — behind a public API, so
//! runtimes in *other* crates (the nonblocking reactor front door) can
//! host a process without qbc-simnet having to expose its internals.
//!
//! The driver owns the process, its timer heap and its RNG. It never
//! blocks and never looks at a wall clock: the caller supplies `now` on
//! every entry point and polls [`NodeDriver::next_deadline`] to learn
//! how long it may sleep. Outbound messages are appended to a
//! caller-supplied `Vec<(SiteId, Msg)>` — routing them (in-memory
//! queues, sockets, whatever the host runtime uses) is the caller's
//! business.

use crate::ids::{SiteId, TimerId};
use crate::process::{Ctx, Effect, Process};
use crate::time::Time;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BinaryHeap, HashSet};

/// A timer armed by the hosted process, ordered soonest-first.
struct Pending<T> {
    due: Time,
    id: TimerId,
    timer: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest deadline
        // (ties broken by arming order) surfaces first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Hosts one [`Process`] outside the simulator: delivers messages and
/// due timers, collects outbound sends.
pub struct NodeDriver<P: Process> {
    node: P,
    site: SiteId,
    rng: SmallRng,
    next_timer_id: u64,
    timers: BinaryHeap<Pending<P::Timer>>,
    cancelled: HashSet<TimerId>,
    effects: Vec<Effect<P::Msg, P::Timer>>,
}

impl<P: Process> NodeDriver<P> {
    /// Wraps `node` and runs its `on_start` at time `now`. The seed
    /// derives the driver's private RNG; distinct sites should use
    /// distinct seeds (the threaded transport's per-site mixing
    /// constant works well).
    pub fn new(
        site: SiteId,
        node: P,
        seed: u64,
        now: Time,
        out: &mut Vec<(SiteId, P::Msg)>,
    ) -> Self {
        let mut d = NodeDriver {
            node,
            site,
            rng: SmallRng::seed_from_u64(seed),
            // Namespacing by site keeps ids unique across a fleet of
            // drivers even though each allocates independently.
            next_timer_id: (site.0 as u64) << 32,
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            effects: Vec::new(),
        };
        let mut effects = std::mem::take(&mut d.effects);
        let mut ctx = Ctx {
            self_id: d.site,
            now,
            rng: &mut d.rng,
            effects: &mut effects,
            next_timer_id: &mut d.next_timer_id,
        };
        d.node.on_start(&mut ctx);
        d.apply(now, &mut effects, out);
        d.effects = effects;
        d
    }

    /// The hosted process's site id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Immutable access to the hosted process (harvest, inspection).
    pub fn node(&self) -> &P {
        &self.node
    }

    /// Mutable access to the hosted process (draining host-visible
    /// event queues the process exposes).
    pub fn node_mut(&mut self) -> &mut P {
        &mut self.node
    }

    /// Unwraps the hosted process.
    pub fn into_node(self) -> P {
        self.node
    }

    /// Delivers one message from `from` at time `now`; outbound sends
    /// are appended to `out`.
    pub fn deliver(
        &mut self,
        now: Time,
        from: SiteId,
        msg: P::Msg,
        out: &mut Vec<(SiteId, P::Msg)>,
    ) {
        let mut effects = std::mem::take(&mut self.effects);
        let mut ctx = Ctx {
            self_id: self.site,
            now,
            rng: &mut self.rng,
            effects: &mut effects,
            next_timer_id: &mut self.next_timer_id,
        };
        self.node.on_message(&mut ctx, from, msg);
        self.apply(now, &mut effects, out);
        self.effects = effects;
    }

    /// Fires every timer due at or before `now`, including timers armed
    /// *by* a firing handler that are already due (the loop re-checks
    /// the heap after each handler).
    pub fn tick(&mut self, now: Time, out: &mut Vec<(SiteId, P::Msg)>) {
        loop {
            match self.timers.peek() {
                Some(p) if p.due <= now => {}
                _ => break,
            }
            let p = self.timers.pop().expect("peeked");
            if self.cancelled.remove(&p.id) {
                continue;
            }
            let mut effects = std::mem::take(&mut self.effects);
            let mut ctx = Ctx {
                self_id: self.site,
                now,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
            };
            self.node.on_timer(&mut ctx, p.id, p.timer);
            self.apply(now, &mut effects, out);
            self.effects = effects;
        }
    }

    /// The earliest armed (uncancelled) timer deadline, or `None` when
    /// the process sleeps until the next message. The caller uses this
    /// to bound its poll timeout.
    pub fn next_deadline(&mut self) -> Option<Time> {
        // Purge cancelled heads so a dead timer never shortens a sleep.
        while let Some(p) = self.timers.peek() {
            if self.cancelled.contains(&p.id) {
                let p = self.timers.pop().expect("peeked");
                self.cancelled.remove(&p.id);
            } else {
                return Some(p.due);
            }
        }
        None
    }

    fn apply(
        &mut self,
        now: Time,
        effects: &mut Vec<Effect<P::Msg, P::Timer>>,
        out: &mut Vec<(SiteId, P::Msg)>,
    ) {
        for e in effects.drain(..) {
            match e {
                Effect::Send { to, msg } => out.push((to, msg)),
                Effect::SetTimer { id, delay, timer } => {
                    self.timers.push(Pending {
                        due: Time(now.0 + delay.0),
                        id,
                        timer,
                    });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
                Effect::Annotate(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Label;
    use crate::time::Duration;

    #[derive(Clone, Debug, PartialEq)]
    enum M {
        Ping,
        Pong,
    }
    impl Label for M {}

    /// Replies Pong to every Ping; arms a timer on start that sends
    /// Ping to site 9 when it fires; cancels a second timer.
    struct Echo {
        victim: Option<TimerId>,
    }
    impl Process for Echo {
        type Msg = M;
        type Timer = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, M, u8>) {
            ctx.set_timer(Duration(10), 1);
            let v = ctx.set_timer(Duration(5), 2);
            self.victim = Some(v);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, M, u8>, from: SiteId, msg: M) {
            if msg == M::Ping {
                ctx.send(from, M::Pong);
            }
            if let Some(v) = self.victim.take() {
                ctx.cancel_timer(v);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, M, u8>, _id: TimerId, timer: u8) {
            ctx.send(SiteId(9), if timer == 1 { M::Ping } else { M::Pong });
        }
    }

    #[test]
    fn drives_messages_timers_and_cancellation() {
        let mut out = Vec::new();
        let mut d = NodeDriver::new(SiteId(3), Echo { victim: None }, 7, Time(0), &mut out);
        assert!(out.is_empty(), "start sends nothing");
        assert_eq!(d.next_deadline(), Some(Time(5)));

        // A message replies and cancels the 5-tick timer.
        d.deliver(Time(2), SiteId(1), M::Ping, &mut out);
        assert_eq!(out, vec![(SiteId(1), M::Pong)]);
        out.clear();
        assert_eq!(d.next_deadline(), Some(Time(10)), "cancelled head purged");

        // Nothing due yet; then the 10-tick timer fires exactly once.
        d.tick(Time(9), &mut out);
        assert!(out.is_empty());
        d.tick(Time(10), &mut out);
        assert_eq!(out, vec![(SiteId(9), M::Ping)]);
        out.clear();
        d.tick(Time(100), &mut out);
        assert!(out.is_empty(), "timer fired once");
        assert_eq!(d.next_deadline(), None);
        assert_eq!(d.site(), SiteId(3));
    }
}
