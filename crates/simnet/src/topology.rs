//! Network topology: partitions, per-link blocks, and message loss.
//!
//! The failure model follows the paper exactly: the network may be
//! partitioned into disjoint components with no communication possible
//! between them, individual messages may be lost, and individual sites
//! may be crashed. Adversarial scenarios (Example 3 of the paper) need
//! *directional* per-link message suppression in addition to partitions,
//! so the topology layers three mechanisms:
//!
//! 1. a partition (a set of disjoint components covering all sites),
//! 2. a set of directed blocked links `(from, to)`,
//! 3. a uniform random loss probability applied to every message.

use crate::ids::SiteId;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Why a message failed to be delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Sender and receiver are in different partition components.
    Partitioned,
    /// The directed link is explicitly blocked (adversarial loss).
    LinkBlocked,
    /// The message was lost at random.
    RandomLoss,
    /// The destination site is crashed.
    ReceiverDown,
    /// The source site is crashed (stale send from a dying site).
    SenderDown,
}

/// Mutable view of the network's connectivity.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `component[site] = component id`; sites can only talk within their
    /// component. A fully connected network has every site in component 0.
    component: BTreeMap<SiteId, u32>,
    /// Directed links that silently drop every message.
    blocked: BTreeSet<(SiteId, SiteId)>,
    /// Probability in `[0,1]` that any individual message is lost.
    loss_probability: f64,
    /// Sites that are currently crashed.
    down: BTreeSet<SiteId>,
}

impl Topology {
    /// A fully connected topology over the given sites with no loss.
    pub fn fully_connected(sites: impl IntoIterator<Item = SiteId>) -> Self {
        Topology {
            component: sites.into_iter().map(|s| (s, 0)).collect(),
            blocked: BTreeSet::new(),
            loss_probability: 0.0,
            down: BTreeSet::new(),
        }
    }

    /// All sites known to the topology, crashed or not.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.component.keys().copied()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.component.len()
    }

    /// True when the topology contains no sites.
    pub fn is_empty(&self) -> bool {
        self.component.is_empty()
    }

    /// Splits the network into the given disjoint components.
    ///
    /// Every site must appear in exactly one component; sites omitted from
    /// all components are isolated into singleton components of their own
    /// (so "partition away a site" is expressible by just listing the rest).
    ///
    /// # Panics
    /// Panics if a site appears in more than one component or if a listed
    /// site is unknown.
    pub fn partition(&mut self, components: &[Vec<SiteId>]) {
        let mut assigned: BTreeMap<SiteId, u32> = BTreeMap::new();
        for (cid, comp) in components.iter().enumerate() {
            for &s in comp {
                assert!(
                    self.component.contains_key(&s),
                    "partition references unknown site {s}"
                );
                let prev = assigned.insert(s, cid as u32);
                assert!(prev.is_none(), "site {s} listed in two components");
            }
        }
        let mut next = components.len() as u32;
        for (&s, c) in self.component.iter_mut() {
            match assigned.get(&s) {
                Some(&cid) => *c = cid,
                None => {
                    *c = next;
                    next += 1;
                }
            }
        }
    }

    /// Restores full connectivity (all sites in one component).
    /// Blocked links and loss probability are unaffected.
    pub fn heal(&mut self) {
        for c in self.component.values_mut() {
            *c = 0;
        }
    }

    /// Returns the current component id of a site.
    pub fn component_of(&self, s: SiteId) -> Option<u32> {
        self.component.get(&s).copied()
    }

    /// Returns the set of sites in the same component as `s` (including
    /// `s` itself), ignoring crash status.
    pub fn component_members(&self, s: SiteId) -> BTreeSet<SiteId> {
        match self.component.get(&s) {
            None => BTreeSet::new(),
            Some(c) => self
                .component
                .iter()
                .filter(|(_, cc)| *cc == c)
                .map(|(&k, _)| k)
                .collect(),
        }
    }

    /// Returns the partition as a list of components (sorted, deterministic).
    pub fn components(&self) -> Vec<BTreeSet<SiteId>> {
        let mut by_comp: BTreeMap<u32, BTreeSet<SiteId>> = BTreeMap::new();
        for (&s, &c) in &self.component {
            by_comp.entry(c).or_default().insert(s);
        }
        by_comp.into_values().collect()
    }

    /// Blocks every message sent on the directed link `from -> to`.
    pub fn block_link(&mut self, from: SiteId, to: SiteId) {
        self.blocked.insert((from, to));
    }

    /// Blocks both directions between two sites.
    pub fn block_pair(&mut self, a: SiteId, b: SiteId) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Unblocks a directed link.
    pub fn unblock_link(&mut self, from: SiteId, to: SiteId) {
        self.blocked.remove(&(from, to));
    }

    /// Removes all link blocks.
    pub fn unblock_all(&mut self) {
        self.blocked.clear();
    }

    /// Sets the probability that any individual message is lost.
    ///
    /// # Panics
    /// Panics unless `p` is within `[0, 1]`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
    }

    /// Current random-loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Marks a site crashed. Messages to and from it are dropped.
    pub fn mark_down(&mut self, s: SiteId) {
        self.down.insert(s);
    }

    /// Marks a site recovered.
    pub fn mark_up(&mut self, s: SiteId) {
        self.down.remove(&s);
    }

    /// True when the site is currently crashed.
    pub fn is_down(&self, s: SiteId) -> bool {
        self.down.contains(&s)
    }

    /// Sites that are up (not crashed), regardless of partition.
    pub fn up_sites(&self) -> BTreeSet<SiteId> {
        self.component
            .keys()
            .copied()
            .filter(|s| !self.down.contains(s))
            .collect()
    }

    /// Sites that are up *and* in the same component as `s`.
    pub fn reachable_from(&self, s: SiteId) -> BTreeSet<SiteId> {
        self.component_members(s)
            .into_iter()
            .filter(|x| !self.down.contains(x))
            .collect()
    }

    /// Decides the fate of a message on the link `from -> to`.
    ///
    /// `rng` is consulted only for random loss, so a zero loss probability
    /// keeps the run fully deterministic regardless of RNG state.
    pub fn route<R: Rng + ?Sized>(
        &self,
        from: SiteId,
        to: SiteId,
        rng: &mut R,
    ) -> Result<(), DropReason> {
        if self.down.contains(&from) {
            return Err(DropReason::SenderDown);
        }
        if self.down.contains(&to) {
            return Err(DropReason::ReceiverDown);
        }
        if self.component.get(&from) != self.component.get(&to) {
            return Err(DropReason::Partitioned);
        }
        if self.blocked.contains(&(from, to)) {
            return Err(DropReason::LinkBlocked);
        }
        if self.loss_probability > 0.0 && rng.gen::<f64>() < self.loss_probability {
            return Err(DropReason::RandomLoss);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::sites;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn fully_connected_routes_everywhere() {
        let t = Topology::fully_connected(sites(4));
        let mut r = rng();
        for a in sites(4) {
            for b in sites(4) {
                assert_eq!(t.route(a, b, &mut r), Ok(()));
            }
        }
    }

    #[test]
    fn partition_blocks_cross_component_traffic() {
        let mut t = Topology::fully_connected(sites(5));
        t.partition(&[
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2), SiteId(3), SiteId(4)],
        ]);
        let mut r = rng();
        assert_eq!(t.route(SiteId(0), SiteId(1), &mut r), Ok(()));
        assert_eq!(
            t.route(SiteId(0), SiteId(2), &mut r),
            Err(DropReason::Partitioned)
        );
        assert_eq!(t.route(SiteId(3), SiteId(4), &mut r), Ok(()));
    }

    #[test]
    fn omitted_sites_become_singletons() {
        let mut t = Topology::fully_connected(sites(3));
        t.partition(&[vec![SiteId(0), SiteId(1)]]);
        let mut r = rng();
        assert_eq!(
            t.route(SiteId(2), SiteId(0), &mut r),
            Err(DropReason::Partitioned)
        );
        assert_eq!(t.component_members(SiteId(2)).len(), 1);
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut t = Topology::fully_connected(sites(4));
        t.partition(&[vec![SiteId(0)], vec![SiteId(1), SiteId(2), SiteId(3)]]);
        t.heal();
        let mut r = rng();
        assert_eq!(t.route(SiteId(0), SiteId(3), &mut r), Ok(()));
        assert_eq!(t.components().len(), 1);
    }

    #[test]
    fn blocked_links_are_directional() {
        let mut t = Topology::fully_connected(sites(3));
        t.block_link(SiteId(0), SiteId(1));
        let mut r = rng();
        assert_eq!(
            t.route(SiteId(0), SiteId(1), &mut r),
            Err(DropReason::LinkBlocked)
        );
        assert_eq!(t.route(SiteId(1), SiteId(0), &mut r), Ok(()));
        t.unblock_link(SiteId(0), SiteId(1));
        assert_eq!(t.route(SiteId(0), SiteId(1), &mut r), Ok(()));
    }

    #[test]
    fn block_pair_blocks_both_directions() {
        let mut t = Topology::fully_connected(sites(3));
        t.block_pair(SiteId(1), SiteId(2));
        let mut r = rng();
        assert_eq!(
            t.route(SiteId(1), SiteId(2), &mut r),
            Err(DropReason::LinkBlocked)
        );
        assert_eq!(
            t.route(SiteId(2), SiteId(1), &mut r),
            Err(DropReason::LinkBlocked)
        );
    }

    #[test]
    fn crashed_sites_drop_traffic() {
        let mut t = Topology::fully_connected(sites(2));
        t.mark_down(SiteId(1));
        let mut r = rng();
        assert_eq!(
            t.route(SiteId(0), SiteId(1), &mut r),
            Err(DropReason::ReceiverDown)
        );
        assert_eq!(
            t.route(SiteId(1), SiteId(0), &mut r),
            Err(DropReason::SenderDown)
        );
        t.mark_up(SiteId(1));
        assert_eq!(t.route(SiteId(0), SiteId(1), &mut r), Ok(()));
        assert!(t.up_sites().contains(&SiteId(1)));
    }

    #[test]
    fn loss_probability_one_drops_everything() {
        let mut t = Topology::fully_connected(sites(2));
        t.set_loss_probability(1.0);
        let mut r = rng();
        assert_eq!(
            t.route(SiteId(0), SiteId(1), &mut r),
            Err(DropReason::RandomLoss)
        );
    }

    #[test]
    #[should_panic(expected = "two components")]
    fn duplicate_site_in_partition_panics() {
        let mut t = Topology::fully_connected(sites(2));
        t.partition(&[vec![SiteId(0)], vec![SiteId(0), SiteId(1)]]);
    }

    #[test]
    fn reachable_from_excludes_down_sites() {
        let mut t = Topology::fully_connected(sites(4));
        t.partition(&[vec![SiteId(0), SiteId(1), SiteId(2)], vec![SiteId(3)]]);
        t.mark_down(SiteId(1));
        let r = t.reachable_from(SiteId(0));
        assert_eq!(r, [SiteId(0), SiteId(2)].into_iter().collect());
    }
}
