//! The deterministic discrete-event simulation driver.
//!
//! A [`Sim`] owns a set of [`Process`] nodes, a [`Topology`], a virtual
//! clock and a seeded RNG. Events (message deliveries, timers, scheduled
//! control actions) are totally ordered by `(time, sequence)` so every run
//! with the same seed and schedule is bit-for-bit reproducible.
//!
//! Message delays are drawn uniformly from `[min_delay, max_delay]`;
//! `max_delay` plays the role of the paper's `T`, the longest end-to-end
//! propagation delay, from which the protocol timeouts `2T` and `3T` are
//! derived.

use crate::fasthash::FastBuildHasher;
use crate::ids::{SiteId, TimerId};
use crate::process::{Ctx, Effect, Label, Process};
use crate::time::{Duration, Time};
use crate::topology::{DropReason, Topology};
use crate::trace::{NetStats, TraceEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashSet};

/// Delay model for message transit.
#[derive(Clone, Copy, Debug)]
pub struct DelayModel {
    /// Minimum transit time of any message.
    pub min: Duration,
    /// Maximum transit time of any message; the paper's `T`.
    pub max: Duration,
}

impl DelayModel {
    /// Uniform delays in `[min, max]`.
    pub fn uniform(min: Duration, max: Duration) -> Self {
        assert!(min <= max, "min delay must not exceed max delay");
        assert!(max.0 > 0, "max delay must be positive");
        DelayModel { min, max }
    }

    /// A constant delay (`min == max`).
    pub fn constant(d: Duration) -> Self {
        Self::uniform(d, d)
    }

    fn sample(&self, rng: &mut SmallRng) -> Duration {
        if self.min == self.max {
            self.min
        } else {
            Duration(rng.gen_range(self.min.0..=self.max.0))
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Message delay model. `delay.max` is the paper's `T`.
    pub delay: DelayModel,
    /// Record full trace events (disable for large Monte-Carlo runs).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            delay: DelayModel::uniform(Duration(1), Duration(10)),
            record_trace: true,
        }
    }
}

impl SimConfig {
    /// The longest end-to-end propagation delay `T` of this configuration.
    pub fn t_bound(&self) -> Duration {
        self.delay.max
    }
}

enum EventKind<N: Process> {
    Start(SiteId),
    Deliver {
        from: SiteId,
        to: SiteId,
        msg: N::Msg,
    },
    Timer {
        site: SiteId,
        id: TimerId,
        timer: N::Timer,
        epoch: u64,
    },
    Crash(SiteId),
    Recover(SiteId),
    Partition(Vec<Vec<SiteId>>),
    Heal,
    BlockLink(SiteId, SiteId),
    UnblockLink(SiteId, SiteId),
    SetLoss(f64),
    #[allow(clippy::type_complexity)]
    Call {
        site: SiteId,
        f: Box<dyn FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Timer>)>,
    },
}

impl<N: Process> EventKind<N> {
    /// Tie-break priority at equal virtual time. The load-bearing rule:
    /// **deliveries precede timers**, so a timeout window of `2T` is
    /// inclusive of messages that took exactly the maximum delay `T`
    /// each way (the paper's timeout arithmetic assumes this). Control
    /// events (crashes, partitions) apply before message processing at
    /// the same instant, and `Start` runs first of all.
    fn priority(&self) -> u8 {
        match self {
            EventKind::Start(_) => 0,
            EventKind::Crash(_)
            | EventKind::Recover(_)
            | EventKind::Partition(_)
            | EventKind::Heal
            | EventKind::BlockLink(..)
            | EventKind::UnblockLink(..)
            | EventKind::SetLoss(_) => 1,
            EventKind::Call { .. } => 2,
            EventKind::Deliver { .. } => 3,
            EventKind::Timer { .. } => 4,
        }
    }
}

struct Scheduled<N: Process> {
    at: Time,
    seq: u64,
    /// `kind.priority()`, cached: the heap re-compares entries
    /// O(log n) times per push/pop, and matching on the kind each time
    /// is measurable at millions of events per second.
    prio: u8,
    kind: EventKind<N>,
}

impl<N: Process> Scheduled<N> {
    fn key(&self) -> (Time, u8, u64) {
        (self.at, self.prio, self.seq)
    }
}

impl<N: Process> PartialEq for Scheduled<N> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<N: Process> Eq for Scheduled<N> {}
impl<N: Process> PartialOrd for Scheduled<N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<N: Process> Ord for Scheduled<N> {
    // Reversed so the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Result of running the simulation to quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Quiescence {
    /// The event queue drained completely.
    Drained { at: Time, events: u64 },
    /// The event budget was exhausted before the queue drained
    /// (usually a livelock or a periodic timer).
    BudgetExhausted { at: Time, events: u64 },
}

impl Quiescence {
    /// Virtual time when the run stopped.
    pub fn at(&self) -> Time {
        match self {
            Quiescence::Drained { at, .. } | Quiescence::BudgetExhausted { at, .. } => *at,
        }
    }

    /// Number of events processed.
    pub fn events(&self) -> u64 {
        match self {
            Quiescence::Drained { events, .. } | Quiescence::BudgetExhausted { events, .. } => {
                *events
            }
        }
    }

    /// True when the queue drained before the budget ran out.
    pub fn drained(&self) -> bool {
        matches!(self, Quiescence::Drained { .. })
    }
}

/// The deterministic discrete-event simulator.
pub struct Sim<N: Process> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled<N>>,
    nodes: BTreeMap<SiteId, N>,
    topology: Topology,
    rng: SmallRng,
    config: SimConfig,
    /// Per-site crash epoch; timers from an older epoch never fire.
    epochs: BTreeMap<SiteId, u64>,
    cancelled: HashSet<TimerId, FastBuildHasher>,
    next_timer_id: u64,
    stats: NetStats,
    trace: Vec<TraceEvent>,
    events_processed: u64,
    /// Reused effect buffer: one allocation for the life of the run
    /// instead of one per event (the loop never re-enters `invoke`
    /// while effects are being applied, so a single buffer suffices).
    effects_scratch: Vec<Effect<N::Msg, N::Timer>>,
}

impl<N: Process> Sim<N> {
    /// Builds a simulator over the given nodes with full connectivity.
    /// Each node's `on_start` runs at time zero (scheduled immediately).
    pub fn new(config: SimConfig, nodes: impl IntoIterator<Item = (SiteId, N)>) -> Self {
        let nodes: BTreeMap<SiteId, N> = nodes.into_iter().collect();
        let topology = Topology::fully_connected(nodes.keys().copied());
        let epochs = nodes.keys().map(|&s| (s, 0)).collect();
        let rng = SmallRng::seed_from_u64(config.seed);
        // Pre-size the hot containers: the queue always holds at least
        // the in-flight fan-out, and a recorded run produces several
        // trace events per simulated message.
        let trace = if config.record_trace {
            Vec::with_capacity(4096)
        } else {
            Vec::new()
        };
        let mut sim = Sim {
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::with_capacity(1024),
            nodes,
            topology,
            rng,
            config,
            epochs,
            cancelled: HashSet::default(),
            next_timer_id: 0,
            stats: NetStats::default(),
            trace,
            events_processed: 0,
            effects_scratch: Vec::with_capacity(64),
        };
        let sites: Vec<SiteId> = sim.nodes.keys().copied().collect();
        for s in sites {
            sim.push(Time::ZERO, EventKind::Start(s));
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The longest end-to-end delay `T` of this run.
    pub fn t_bound(&self) -> Duration {
        self.config.t_bound()
    }

    /// Immutable access to a node.
    pub fn node(&self, s: SiteId) -> &N {
        &self.nodes[&s]
    }

    /// Mutable access to a node (outside the event loop; for inspection
    /// and test setup only — effects issued here are not routed).
    pub fn node_mut(&mut self, s: SiteId) -> &mut N {
        self.nodes.get_mut(&s).expect("unknown site")
    }

    /// All site ids in the simulation.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.nodes.keys().copied().collect()
    }

    /// Iterates over `(site, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (SiteId, &N)> {
        self.nodes.iter().map(|(&s, n)| (s, n))
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Total events processed since construction (deliveries, timers,
    /// control events). The denominator of events-per-second figures.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The recorded trace (empty when `record_trace` is off).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Current topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Sites currently up and reachable from `s` (including `s`).
    pub fn reachable_from(&self, s: SiteId) -> BTreeSet<SiteId> {
        self.topology.reachable_from(s)
    }

    fn push(&mut self, at: Time, kind: EventKind<N>) {
        let seq = self.seq;
        self.seq += 1;
        let prio = kind.priority();
        self.queue.push(Scheduled {
            at,
            seq,
            prio,
            kind,
        });
    }

    // ---- schedule API -------------------------------------------------

    /// Crashes a site at `at`: volatile state is lost, in-flight messages
    /// to it are dropped, timers set before the crash never fire.
    pub fn schedule_crash(&mut self, at: Time, site: SiteId) {
        self.push(at, EventKind::Crash(site));
    }

    /// Recovers a crashed site at `at` (invokes `on_recover`).
    pub fn schedule_recover(&mut self, at: Time, site: SiteId) {
        self.push(at, EventKind::Recover(site));
    }

    /// Partitions the network into the given components at `at`.
    pub fn schedule_partition(&mut self, at: Time, components: Vec<Vec<SiteId>>) {
        self.push(at, EventKind::Partition(components));
    }

    /// Heals all partitions at `at`.
    pub fn schedule_heal(&mut self, at: Time) {
        self.push(at, EventKind::Heal);
    }

    /// Blocks the directed link `from -> to` at `at`.
    pub fn schedule_block_link(&mut self, at: Time, from: SiteId, to: SiteId) {
        self.push(at, EventKind::BlockLink(from, to));
    }

    /// Unblocks the directed link `from -> to` at `at`.
    pub fn schedule_unblock_link(&mut self, at: Time, from: SiteId, to: SiteId) {
        self.push(at, EventKind::UnblockLink(from, to));
    }

    /// Sets the random loss probability at `at`.
    pub fn schedule_loss(&mut self, at: Time, p: f64) {
        self.push(at, EventKind::SetLoss(p));
    }

    /// Invokes a closure on a node inside the event loop at `at`, with a
    /// full [`Ctx`] so it can send messages and set timers. This is how
    /// external clients (the harness) inject work.
    pub fn schedule_call(
        &mut self,
        at: Time,
        site: SiteId,
        f: impl FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Timer>) + 'static,
    ) {
        self.push(
            at,
            EventKind::Call {
                site,
                f: Box::new(f),
            },
        );
    }

    // ---- run loop -----------------------------------------------------

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Start(site) => {
                if !self.topology.is_down(site) {
                    self.invoke(site, |n, ctx| n.on_start(ctx));
                }
            }
            EventKind::Deliver { from, to, msg } => self.deliver(from, to, msg),
            EventKind::Timer {
                site,
                id,
                timer,
                epoch,
            } => {
                if self.cancelled.remove(&id) {
                    return true;
                }
                if self.topology.is_down(site) || self.epochs[&site] != epoch {
                    return true;
                }
                self.stats.timers_fired += 1;
                if self.config.record_trace {
                    self.trace
                        .push(TraceEvent::TimerFired { at: self.now, site });
                }
                self.invoke(site, |n, ctx| n.on_timer(ctx, id, timer));
            }
            EventKind::Crash(site) => {
                if !self.topology.is_down(site) {
                    self.topology.mark_down(site);
                    *self.epochs.get_mut(&site).expect("unknown site") += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Crashed { at: self.now, site });
                    }
                    let now = self.now;
                    if let Some(n) = self.nodes.get_mut(&site) {
                        n.on_crash(now);
                    }
                }
            }
            EventKind::Recover(site) => {
                if self.topology.is_down(site) {
                    self.topology.mark_up(site);
                    if self.config.record_trace {
                        self.trace
                            .push(TraceEvent::Recovered { at: self.now, site });
                    }
                    self.invoke(site, |n, ctx| n.on_recover(ctx));
                }
            }
            EventKind::Partition(components) => {
                self.topology.partition(&components);
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Partitioned {
                        at: self.now,
                        components: self.topology.components().len(),
                    });
                }
            }
            EventKind::Heal => {
                self.topology.heal();
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Healed { at: self.now });
                }
            }
            EventKind::BlockLink(a, b) => self.topology.block_link(a, b),
            EventKind::UnblockLink(a, b) => self.topology.unblock_link(a, b),
            EventKind::SetLoss(p) => self.topology.set_loss_probability(p),
            EventKind::Call { site, f } => {
                if !self.topology.is_down(site) {
                    self.invoke(site, f);
                }
            }
        }
        debug_assert!(
            self.config.record_trace || self.trace.is_empty(),
            "trace bytes produced while record_trace is off"
        );
        true
    }

    /// Runs until the virtual clock reaches `t` or the queue drains.
    pub fn run_until(&mut self, t: Time) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until the queue drains or `max_events` have been processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> Quiescence {
        let start = self.events_processed;
        while self.events_processed - start < max_events {
            if !self.step() {
                return Quiescence::Drained {
                    at: self.now,
                    events: self.events_processed - start,
                };
            }
        }
        Quiescence::BudgetExhausted {
            at: self.now,
            events: self.events_processed - start,
        }
    }

    // ---- internals ----------------------------------------------------

    fn deliver(&mut self, from: SiteId, to: SiteId, msg: N::Msg) {
        // Re-check routability at delivery: partitions or crashes that
        // happened while the message was in flight destroy it. Random
        // loss was already decided at send time.
        let label = msg.label();
        let deliverable = if self.topology.is_down(to) {
            Err(DropReason::ReceiverDown)
        } else if self.topology.component_of(from) != self.topology.component_of(to) {
            Err(DropReason::Partitioned)
        } else {
            Ok(())
        };
        match deliverable {
            Err(reason) => {
                self.stats.record_dropped(reason);
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Dropped {
                        at: self.now,
                        from,
                        to,
                        label,
                        reason,
                    });
                }
            }
            Ok(()) => {
                self.stats.record_delivered(label);
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Delivered {
                        at: self.now,
                        from,
                        to,
                        label,
                    });
                }
                self.invoke(to, |n, ctx| n.on_message(ctx, from, msg));
            }
        }
    }

    /// Runs a node handler and applies its effects. Monomorphized per
    /// call site — no per-event boxing — and the effect buffer is the
    /// reused scratch vector, so a steady-state event allocates nothing
    /// in the loop itself.
    fn invoke(&mut self, site: SiteId, f: impl FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Timer>)) {
        let mut effects = std::mem::take(&mut self.effects_scratch);
        debug_assert!(effects.is_empty());
        {
            let node = self.nodes.get_mut(&site).expect("unknown site");
            let mut ctx = Ctx {
                self_id: site,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
            };
            f(node, &mut ctx);
        }
        self.apply_effects(site, &mut effects);
        effects.clear();
        self.effects_scratch = effects;
    }

    fn apply_effects(&mut self, site: SiteId, effects: &mut Vec<Effect<N::Msg, N::Timer>>) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg } => {
                    let label = msg.label();
                    self.stats.record_sent(label);
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Sent {
                            at: self.now,
                            from: site,
                            to,
                            label,
                        });
                    }
                    // Loss, blocked links and partitions at *send* time are
                    // decided here; crashes/partitions during flight are
                    // re-checked at delivery.
                    match self.topology.route(site, to, &mut self.rng) {
                        Ok(()) => {
                            let delay = self.config.delay.sample(&mut self.rng);
                            let at = self.now + delay;
                            self.push(
                                at,
                                EventKind::Deliver {
                                    from: site,
                                    to,
                                    msg,
                                },
                            );
                        }
                        Err(reason) => {
                            self.stats.record_dropped(reason);
                            if self.config.record_trace {
                                self.trace.push(TraceEvent::Dropped {
                                    at: self.now,
                                    from: site,
                                    to,
                                    label,
                                    reason,
                                });
                            }
                        }
                    }
                }
                Effect::SetTimer { id, delay, timer } => {
                    let epoch = self.epochs[&site];
                    let at = self.now + delay;
                    self.push(
                        at,
                        EventKind::Timer {
                            site,
                            id,
                            timer,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
                Effect::Annotate(text) => {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Note {
                            at: self.now,
                            site,
                            text,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Label;

    /// A process that floods a token around the ring once.
    #[derive(Debug)]
    struct Ring {
        n: u32,
        received: Vec<u32>,
        timer_fired: bool,
    }

    #[derive(Clone, Debug)]
    enum RingMsg {
        Token(u32),
    }

    impl Label for RingMsg {
        fn label(&self) -> &'static str {
            "TOKEN"
        }
    }

    impl Process for Ring {
        type Msg = RingMsg;
        type Timer = &'static str;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
            if ctx.id() == SiteId(0) {
                ctx.send(SiteId(1 % self.n), RingMsg::Token(0));
            }
        }

        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
            _from: SiteId,
            msg: Self::Msg,
        ) {
            let RingMsg::Token(hops) = msg;
            self.received.push(hops);
            if hops + 1 < self.n * 2 {
                let next = SiteId((ctx.id().0 + 1) % self.n);
                ctx.send(next, RingMsg::Token(hops + 1));
            }
        }

        fn on_timer(
            &mut self,
            _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
            _id: TimerId,
            _t: Self::Timer,
        ) {
            self.timer_fired = true;
        }
    }

    fn ring_sim(seed: u64, n: u32) -> Sim<Ring> {
        let cfg = SimConfig {
            seed,
            delay: DelayModel::uniform(Duration(1), Duration(5)),
            record_trace: true,
        };
        Sim::new(
            cfg,
            (0..n).map(|i| {
                (
                    SiteId(i),
                    Ring {
                        n,
                        received: vec![],
                        timer_fired: false,
                    },
                )
            }),
        )
    }

    #[test]
    fn token_circulates_and_run_drains() {
        let mut sim = ring_sim(42, 4);
        let q = sim.run_to_quiescence(10_000);
        assert!(q.drained());
        // 8 hops total over 4 nodes: each node got 2 tokens.
        for (_, node) in sim.nodes() {
            assert_eq!(node.received.len(), 2);
        }
        assert_eq!(sim.stats().delivered, 8);
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let mut a = ring_sim(7, 5);
        let mut b = ring_sim(7, 5);
        a.run_to_quiescence(10_000);
        b.run_to_quiescence(10_000);
        assert_eq!(a.trace().len(), b.trace().len());
        for (x, y) in a.trace().iter().zip(b.trace().iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ring_sim(1, 5);
        let mut b = ring_sim(2, 5);
        a.run_to_quiescence(10_000);
        b.run_to_quiescence(10_000);
        // Delivery times should differ under different delay draws.
        assert_ne!(
            a.trace().iter().map(|e| e.at()).collect::<Vec<_>>(),
            b.trace().iter().map(|e| e.at()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_drops_inflight_and_suppresses_timers() {
        #[derive(Debug, Default)]
        struct P {
            got: u32,
            timer: u32,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {
            fn label(&self) -> &'static str {
                "M"
            }
        }
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
                if ctx.id() == SiteId(0) {
                    ctx.send(SiteId(1), M);
                }
                if ctx.id() == SiteId(1) {
                    ctx.set_timer(Duration(100), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {
                self.got += 1;
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {
                self.timer += 1;
            }
        }
        let cfg = SimConfig {
            seed: 3,
            delay: DelayModel::constant(Duration(10)),
            record_trace: true,
        };
        let mut sim = Sim::new(cfg, [(SiteId(0), P::default()), (SiteId(1), P::default())]);
        // Crash s1 at t=5, while the message (arriving t=10) is in flight
        // and before its own timer (t=100).
        sim.schedule_crash(Time(5), SiteId(1));
        sim.schedule_recover(Time(50), SiteId(1));
        let q = sim.run_to_quiescence(1000);
        assert!(q.drained());
        assert_eq!(sim.node(SiteId(1)).got, 0, "in-flight message must drop");
        assert_eq!(
            sim.node(SiteId(1)).timer,
            0,
            "pre-crash timer must not fire"
        );
        assert_eq!(sim.stats().dropped_receiver_down, 1);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        #[derive(Debug, Default)]
        struct P {
            fired: bool,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, M, u8>) {
                let id = ctx.set_timer(Duration(10), 1);
                ctx.cancel_timer(id);
                ctx.set_timer(Duration(20), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, u8>, _f: SiteId, _m: M) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, u8>, _id: TimerId, t: u8) {
                assert_eq!(t, 2, "cancelled timer fired");
                self.fired = true;
            }
        }
        let mut sim = Sim::new(SimConfig::default(), [(SiteId(0), P::default())]);
        sim.run_to_quiescence(100);
        assert!(sim.node(SiteId(0)).fired);
    }

    #[test]
    fn partition_drops_at_send_and_in_flight() {
        #[derive(Debug, Default)]
        struct P {
            got: u32,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
                if ctx.id() == SiteId(0) {
                    ctx.send(SiteId(1), M);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {
                self.got += 1;
            }
            fn on_timer(&mut self, _c: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {}
        }
        let cfg = SimConfig {
            seed: 9,
            delay: DelayModel::constant(Duration(10)),
            record_trace: false,
        };
        let mut sim = Sim::new(cfg, [(SiteId(0), P::default()), (SiteId(1), P::default())]);
        // Partition at t=5 separates them while the message is in flight.
        sim.schedule_partition(Time(5), vec![vec![SiteId(0)], vec![SiteId(1)]]);
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(SiteId(1)).got, 0);
        assert_eq!(sim.stats().dropped_partitioned, 1);
    }

    #[test]
    fn schedule_call_injects_work() {
        #[derive(Debug, Default)]
        struct P {
            poked: bool,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {
                self.poked = true;
            }
            fn on_timer(&mut self, _c: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {}
        }
        let mut sim = Sim::new(
            SimConfig::default(),
            [(SiteId(0), P::default()), (SiteId(1), P::default())],
        );
        sim.schedule_call(Time(5), SiteId(0), |_n, ctx| {
            ctx.send(SiteId(1), M);
        });
        sim.run_to_quiescence(100);
        assert!(sim.node(SiteId(1)).poked);
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut sim = ring_sim(11, 3);
        sim.run_until(Time(2));
        assert_eq!(sim.now(), Time(2));
    }

    #[test]
    fn deliveries_precede_timers_at_equal_time() {
        // A message taking exactly the maximum delay T must beat a
        // timeout of exactly T set at the same send instant — the
        // inclusive-deadline semantics the paper's 2T windows assume.
        #[derive(Debug, Default)]
        struct P {
            got_msg_before_timer: Option<bool>,
            got_msg: bool,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
                if ctx.id() == SiteId(0) {
                    ctx.send(SiteId(1), M);
                }
                if ctx.id() == SiteId(1) {
                    ctx.set_timer(Duration(10), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {
                self.got_msg = true;
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {
                self.got_msg_before_timer = Some(self.got_msg);
            }
        }
        let cfg = SimConfig {
            seed: 5,
            delay: DelayModel::constant(Duration(10)),
            record_trace: false,
        };
        let mut sim = Sim::new(cfg, [(SiteId(0), P::default()), (SiteId(1), P::default())]);
        sim.run_to_quiescence(100);
        assert_eq!(
            sim.node(SiteId(1)).got_msg_before_timer,
            Some(true),
            "the t=10 delivery must be processed before the t=10 timer"
        );
    }

    #[test]
    fn control_events_precede_deliveries_at_equal_time() {
        // A crash scheduled at t kills a delivery arriving at t.
        #[derive(Debug, Default)]
        struct P {
            got: bool,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
                if ctx.id() == SiteId(0) {
                    ctx.send(SiteId(1), M);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {
                self.got = true;
            }
            fn on_timer(&mut self, _c: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {}
        }
        let cfg = SimConfig {
            seed: 5,
            delay: DelayModel::constant(Duration(10)),
            record_trace: false,
        };
        let mut sim = Sim::new(cfg, [(SiteId(0), P::default()), (SiteId(1), P::default())]);
        sim.schedule_crash(Time(10), SiteId(1));
        sim.run_to_quiescence(100);
        assert!(!sim.node(SiteId(1)).got, "crash at t beats delivery at t");
    }

    #[test]
    fn recovery_invokes_on_recover() {
        #[derive(Debug, Default)]
        struct P {
            recovered: bool,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl Label for M {}
        impl Process for P {
            type Msg = M;
            type Timer = ();
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M, ()>, _f: SiteId, _m: M) {}
            fn on_timer(&mut self, _c: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {}
            fn on_recover(&mut self, _ctx: &mut Ctx<'_, M, ()>) {
                self.recovered = true;
            }
        }
        let mut sim = Sim::new(SimConfig::default(), [(SiteId(0), P::default())]);
        sim.schedule_crash(Time(1), SiteId(0));
        sim.schedule_recover(Time(10), SiteId(0));
        sim.run_to_quiescence(100);
        assert!(sim.node(SiteId(0)).recovered);
    }
}
