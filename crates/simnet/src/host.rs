//! Single-step controlled host for exhaustive model checking.
//!
//! [`crate::Sim`] drives a node set along *one* schedule per seed: the
//! event heap picks the next event, time advances, the run is a sample.
//! A model checker needs the opposite contract — at every state it must
//! see **all** enabled events and branch on each. [`ControlledHost`] is
//! that substrate: it owns the same [`Process`] nodes, but instead of an
//! event heap it exposes the set of enabled [`Choice`]s (message
//! deliveries, timer firings, crashes, recoveries, and budget-gated
//! drops/duplications) and applies exactly the one it is told to.
//! Cloning the host clones the whole system state, which is how a
//! depth-first search branches; a recorded `Vec<Choice>` replays the
//! exact schedule deterministically.
//!
//! ## Abstract time
//!
//! Message delivery does not advance the clock. Firing a timer advances
//! the global clock to `max(now, deadline)` — time moves only when a
//! timeout is *chosen*, and every interleaving of timers across
//! different sites is explorable regardless of their numeric deadlines.
//! Within one site timers stay ordered: only the earliest `(deadline,
//! id)` timer of each live site is enabled. This abstraction preserves
//! soundness of per-state invariant checks (every explored state is a
//! reachable state of some timed execution) but trades away some
//! timing-dependent completeness: states merged by the fingerprint may
//! differ in absolute clock values, so schedules that depend on exact
//! elapsed-time arithmetic are explored for a representative clock
//! assignment, not all of them.
//!
//! ## Fingerprints
//!
//! [`ControlledHost::fingerprint`] canonically hashes the node states
//! (via the [`Fingerprint`] impl of the node type), the in-flight
//! message multiset, the pending timers (per-site order and payload,
//! with deadlines taken *relative* to the current clock so merged
//! states agree on future firing order), the up/down map, and the
//! remaining fault budgets. Two states with equal fingerprints have
//! equal enabled-choice futures up to the time abstraction above, so a
//! visited-set over fingerprints is what makes exhaustive search
//! tractable.

use crate::fasthash::FastHasher;
use crate::ids::{SiteId, TimerId};
use crate::process::{Ctx, Effect, Process};
use crate::time::Time;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hasher;

/// Canonical state hashing for model-checked node types.
///
/// Implementations must fold every behaviour-relevant piece of state
/// into `h` in a deterministic order (sort map keys, skip absolute
/// times and timer ids), so that two nodes hashing equal are
/// behaviourally equivalent for the purposes of the search's
/// visited-set.
pub trait Fingerprint {
    /// Folds this value's canonical state into the hasher. `now` is the
    /// host's current clock: any internal absolute timestamps must be
    /// hashed *relative* to it (`now.since(t)`), so states that differ
    /// only by a clock translation merge.
    fn fingerprint(&self, now: Time, h: &mut FastHasher);
}

/// A message in flight between two sites, tagged with a host-unique
/// sequence number so a recorded schedule can name it stably.
#[derive(Clone, Debug)]
pub struct PendingMsg<M> {
    /// Host-unique sequence number (assigned in send order).
    pub seq: u64,
    /// Sender.
    pub from: SiteId,
    /// Destination.
    pub to: SiteId,
    /// Payload.
    pub msg: M,
}

/// A pending timer owned by one site.
#[derive(Clone, Debug)]
pub struct PendingTimer<T> {
    /// The site that set the timer (and will receive the firing).
    pub site: SiteId,
    /// The id handed back to the process by [`Ctx::set_timer`].
    pub id: TimerId,
    /// Absolute virtual deadline.
    pub deadline: Time,
    /// Payload.
    pub timer: T,
}

/// One enabled transition of the controlled host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message with this sequence number (to a
    /// down site this consumes the message without invoking a handler).
    Deliver {
        /// Sequence number of the message.
        seq: u64,
    },
    /// Drop the in-flight message with this sequence number (budgeted).
    Drop {
        /// Sequence number of the message.
        seq: u64,
    },
    /// Duplicate the in-flight message with this sequence number
    /// (budgeted); the copy gets a fresh sequence number.
    Duplicate {
        /// Sequence number of the message.
        seq: u64,
    },
    /// Fire the earliest pending timer of this site.
    Fire {
        /// The site whose earliest timer fires.
        site: SiteId,
    },
    /// Crash this site (budgeted; volatile state and timers are lost).
    Crash {
        /// The site to crash.
        site: SiteId,
    },
    /// Recover this crashed site (budgeted).
    Recover {
        /// The site to recover.
        site: SiteId,
    },
}

/// Fault budgets and eligibility for [`ControlledHost`] enumeration.
///
/// The exhaustive search multiplies states per enabled choice, so the
/// fault dimensions are budgeted: a config with `max_crashes: 1` and
/// one eligible site explores every *placement* of a single crash along
/// every schedule, which is already far beyond what sampled fault
/// injection covers.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Sites allowed to crash (enumeration skips all others).
    pub crash_sites: Vec<SiteId>,
    /// Maximum number of crash transitions per execution.
    pub max_crashes: u32,
    /// Maximum number of recover transitions per execution.
    pub max_recoveries: u32,
    /// Maximum number of dropped messages per execution.
    pub max_drops: u32,
    /// Maximum number of duplicated messages per execution.
    pub max_duplicates: u32,
    /// Which timer firings are enabled as choices; see [`FirePolicy`].
    pub fire_policy: FirePolicy,
}

/// How aggressively timer firings are enumerated as choice points.
///
/// Timeouts are the biggest source of state explosion: a fire is
/// enabled in *every* state with a pending timer, and each one drags
/// the protocol into its termination path. The policies trade coverage
/// for tractability, from "model everything" to the classic
/// timeouts-mean-silence reduction used by message-passing checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirePolicy {
    /// Any live site with a pending timer may fire next, regardless of
    /// how its deadline compares to other sites'. This models clock
    /// drift and process pauses — one site's "later" timeout lands
    /// before another's "earlier" one — and is the only policy that
    /// exposes bugs needing a stale site to time out first.
    Free,
    /// Only sites whose earliest deadline equals the global minimum
    /// across live sites may fire: a single well-synchronized clock.
    /// Ties remain a genuine choice.
    Ordered,
    /// [`FirePolicy::Ordered`], and additionally timers may only fire
    /// while **no message is in flight anywhere**: every timeout
    /// outlasts any burst of wire traffic (the partial-synchrony
    /// assumption the protocol's `T` already encodes). A timeout then
    /// means genuine silence — the message it was waiting for was
    /// dropped or its sender crashed — so pair `Lazy` with a drop
    /// budget when timeout-vs-loss races matter; the schedules this
    /// policy prunes are exactly "drop it, then fire".
    Lazy,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            crash_sites: Vec::new(),
            max_crashes: 0,
            max_recoveries: 0,
            max_drops: 0,
            max_duplicates: 0,
            fire_policy: FirePolicy::Free,
        }
    }
}

#[derive(Clone, Debug)]
struct Slot<N> {
    node: N,
    up: bool,
}

/// The controlled system: nodes plus in-flight messages, pending
/// timers, the abstract clock, and the spent fault budgets.
///
/// See the module docs for the exploration contract.
pub struct ControlledHost<N: Process> {
    cfg: HostConfig,
    nodes: BTreeMap<SiteId, Slot<N>>,
    in_flight: Vec<PendingMsg<N::Msg>>,
    timers: Vec<PendingTimer<N::Timer>>,
    now: Time,
    next_seq: u64,
    next_timer_id: u64,
    rng: SmallRng,
    crashes_used: u32,
    recoveries_used: u32,
    drops_used: u32,
    duplicates_used: u32,
}

impl<N: Process + Clone> Clone for ControlledHost<N>
where
    N::Msg: Clone,
    N::Timer: Clone,
{
    fn clone(&self) -> Self {
        ControlledHost {
            cfg: self.cfg.clone(),
            nodes: self.nodes.clone(),
            in_flight: self.in_flight.clone(),
            timers: self.timers.clone(),
            now: self.now,
            next_seq: self.next_seq,
            next_timer_id: self.next_timer_id,
            rng: self.rng.clone(),
            crashes_used: self.crashes_used,
            recoveries_used: self.recoveries_used,
            drops_used: self.drops_used,
            duplicates_used: self.duplicates_used,
        }
    }
}

impl<N: Process> ControlledHost<N> {
    /// Builds the host and runs every node's [`Process::on_start`] (in
    /// site order), collecting their initial sends and timers.
    pub fn new(cfg: HostConfig, nodes: impl IntoIterator<Item = (SiteId, N)>) -> Self {
        let mut host = ControlledHost {
            cfg,
            nodes: nodes
                .into_iter()
                .map(|(s, n)| (s, Slot { node: n, up: true }))
                .collect(),
            in_flight: Vec::new(),
            timers: Vec::new(),
            now: Time::ZERO,
            next_seq: 0,
            next_timer_id: 0,
            // The protocol nodes never consult the rng; a fixed seed
            // keeps any future use deterministic per path.
            rng: SmallRng::seed_from_u64(0x9bc_0dec),
            crashes_used: 0,
            recoveries_used: 0,
            drops_used: 0,
            duplicates_used: 0,
        };
        let sites: Vec<SiteId> = host.nodes.keys().copied().collect();
        for site in sites {
            host.invoke(site, |node, ctx| node.on_start(ctx));
        }
        host
    }

    /// Current abstract virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether `site` is currently up.
    pub fn is_up(&self, site: SiteId) -> bool {
        self.nodes.get(&site).is_some_and(|s| s.up)
    }

    /// All sites, in id order.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.nodes.keys().copied()
    }

    /// Shared access to a node's state (for invariant checks).
    ///
    /// # Panics
    /// If `site` is not part of the host.
    pub fn node(&self, site: SiteId) -> &N {
        &self.nodes.get(&site).expect("unknown site").node
    }

    /// The in-flight messages, in send order.
    pub fn in_flight(&self) -> &[PendingMsg<N::Msg>] {
        &self.in_flight
    }

    /// Enqueues a message from an external client (a site id outside the
    /// node set) as an in-flight delivery — how a harness submits work
    /// into the system under test. Replies the nodes send back to `from`
    /// are absorbed by the external sink (see [`ControlledHost::new`]).
    ///
    /// # Panics
    /// If `to` is not a member site.
    pub fn inject(&mut self, from: SiteId, to: SiteId, msg: N::Msg) {
        assert!(self.nodes.contains_key(&to), "inject to unknown site");
        self.in_flight.push(PendingMsg {
            seq: self.next_seq,
            from,
            to,
            msg,
        });
        self.next_seq += 1;
    }

    /// The pending timers (unordered; per-site firing order is by
    /// `(deadline, id)`).
    pub fn pending_timers(&self) -> &[PendingTimer<N::Timer>] {
        &self.timers
    }

    /// Enumerates every enabled choice in this state, in a fixed
    /// deterministic order: deliveries (send order), then drops and
    /// duplications if budget remains, then per-site timer firings,
    /// then crashes and recoveries if budget remains.
    pub fn enabled_choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for m in &self.in_flight {
            out.push(Choice::Deliver { seq: m.seq });
        }
        if self.drops_used < self.cfg.max_drops {
            for m in &self.in_flight {
                out.push(Choice::Drop { seq: m.seq });
            }
        }
        if self.duplicates_used < self.cfg.max_duplicates {
            for m in &self.in_flight {
                out.push(Choice::Duplicate { seq: m.seq });
            }
        }
        let fires_muted = self.cfg.fire_policy == FirePolicy::Lazy && !self.in_flight.is_empty();
        let fire_floor = match self.cfg.fire_policy {
            FirePolicy::Free => None,
            FirePolicy::Ordered | FirePolicy::Lazy => self
                .nodes
                .iter()
                .filter(|(_, slot)| slot.up)
                .filter_map(|(&site, _)| self.earliest_timer(site))
                .map(|i| self.timers[i].deadline)
                .min(),
        };
        for (&site, slot) in &self.nodes {
            if !slot.up || fires_muted {
                continue;
            }
            match (self.earliest_timer(site), self.cfg.fire_policy) {
                (Some(_), FirePolicy::Free) => out.push(Choice::Fire { site }),
                (Some(i), _) => {
                    // Ordered/Lazy: only the globally earliest deadline
                    // may fire; ties stay nondeterministic.
                    if Some(self.timers[i].deadline) == fire_floor {
                        out.push(Choice::Fire { site });
                    }
                }
                (None, _) => {}
            }
        }
        if self.crashes_used < self.cfg.max_crashes {
            for &site in &self.cfg.crash_sites {
                if self.is_up(site) {
                    out.push(Choice::Crash { site });
                }
            }
        }
        if self.recoveries_used < self.cfg.max_recoveries {
            for (&site, slot) in &self.nodes {
                if !slot.up {
                    out.push(Choice::Recover { site });
                }
            }
        }
        out
    }

    /// Applies one choice (must be enabled in the current state).
    ///
    /// # Panics
    /// If the choice is not applicable — the checker only applies
    /// choices it enumerated, and a replayed schedule follows a path
    /// that produced them.
    pub fn apply(&mut self, choice: Choice) {
        match choice {
            Choice::Deliver { seq } => {
                let m = self.take_msg(seq);
                if self.nodes.get(&m.to).expect("message to unknown site").up {
                    self.invoke(m.to, |node, ctx| node.on_message(ctx, m.from, m.msg));
                }
                // Down destination: the wire delivered it into a dead
                // site — indistinguishable from loss, no handler runs.
            }
            Choice::Drop { seq } => {
                assert!(
                    self.drops_used < self.cfg.max_drops,
                    "drop budget exhausted"
                );
                self.drops_used += 1;
                let _ = self.take_msg(seq);
            }
            Choice::Duplicate { seq } => {
                assert!(
                    self.duplicates_used < self.cfg.max_duplicates,
                    "duplicate budget exhausted"
                );
                self.duplicates_used += 1;
                let pos = self.msg_pos(seq);
                let mut copy = self.in_flight[pos].clone();
                copy.seq = self.next_seq;
                self.next_seq += 1;
                self.in_flight.push(copy);
            }
            Choice::Fire { site } => {
                let pos = self
                    .earliest_timer(site)
                    .expect("no pending timer at this site");
                let t = self.timers.swap_remove(pos);
                assert!(
                    self.nodes.get(&site).expect("unknown site").up,
                    "timer fire at a down site"
                );
                if t.deadline > self.now {
                    self.now = t.deadline;
                }
                self.invoke(site, |node, ctx| node.on_timer(ctx, t.id, t.timer));
            }
            Choice::Crash { site } => {
                assert!(
                    self.crashes_used < self.cfg.max_crashes,
                    "crash budget exhausted"
                );
                self.crashes_used += 1;
                let now = self.now;
                let slot = self.nodes.get_mut(&site).expect("unknown site");
                assert!(slot.up, "crash of a down site");
                slot.up = false;
                slot.node.on_crash(now);
                // Crash-epoch timer invalidation, as in the live sim.
                self.timers.retain(|t| t.site != site);
            }
            Choice::Recover { site } => {
                assert!(
                    self.recoveries_used < self.cfg.max_recoveries,
                    "recovery budget exhausted"
                );
                self.recoveries_used += 1;
                let slot = self.nodes.get_mut(&site).expect("unknown site");
                assert!(!slot.up, "recover of an up site");
                slot.up = true;
                self.invoke(site, |node, ctx| node.on_recover(ctx));
            }
        }
    }

    /// A one-line human description of a choice in this state, for
    /// counterexample traces. Uses message/timer `Debug` payloads.
    pub fn describe(&self, choice: Choice) -> String {
        match choice {
            Choice::Deliver { seq } => match self.find_msg(seq) {
                Some(m) => format!("deliver {} -> {}: {:?}", m.from, m.to, m.msg),
                None => format!("deliver #{seq}"),
            },
            Choice::Drop { seq } => match self.find_msg(seq) {
                Some(m) => format!("drop {} -> {}: {:?}", m.from, m.to, m.msg),
                None => format!("drop #{seq}"),
            },
            Choice::Duplicate { seq } => match self.find_msg(seq) {
                Some(m) => format!("duplicate {} -> {}: {:?}", m.from, m.to, m.msg),
                None => format!("duplicate #{seq}"),
            },
            Choice::Fire { site } => match self.earliest_timer(site) {
                Some(pos) => format!("fire {}: {:?}", site, self.timers[pos].timer),
                None => format!("fire {site}"),
            },
            Choice::Crash { site } => format!("crash {site}"),
            Choice::Recover { site } => format!("recover {site}"),
        }
    }

    /// Canonical hash of the full system state (see module docs).
    pub fn fingerprint(&self) -> u64
    where
        N: Fingerprint,
    {
        let mut h = FastHasher::default();
        for (&site, slot) in &self.nodes {
            h.write_u32(site.0);
            h.write_u8(slot.up as u8);
            slot.node.fingerprint(self.now, &mut h);
        }
        // The in-flight multiset, canonically ordered by rendered
        // content (sequence numbers are history, not state).
        let mut msgs: Vec<String> = self
            .in_flight
            .iter()
            .map(|m| format!("{}>{}:{:?}", m.from.0, m.to.0, m.msg))
            .collect();
        msgs.sort_unstable();
        for s in &msgs {
            h.write(s.as_bytes());
            h.write_u8(0xfe);
        }
        // Timers: per-site (deadline, id) order with deadlines relative
        // to the clock, so states merged across clock values agree on
        // what fires next and when new timers slot in.
        let mut order: Vec<usize> = (0..self.timers.len()).collect();
        order.sort_by_key(|&i| {
            let t = &self.timers[i];
            (t.site, t.deadline, t.id)
        });
        for i in order {
            let t = &self.timers[i];
            h.write_u32(t.site.0);
            h.write_u64(t.deadline.since(self.now).0);
            h.write(format!("{:?}", t.timer).as_bytes());
            h.write_u8(0xfd);
        }
        h.write_u32(self.crashes_used);
        h.write_u32(self.recoveries_used);
        h.write_u32(self.drops_used);
        h.write_u32(self.duplicates_used);
        h.finish()
    }

    fn find_msg(&self, seq: u64) -> Option<&PendingMsg<N::Msg>> {
        self.in_flight.iter().find(|m| m.seq == seq)
    }

    fn msg_pos(&self, seq: u64) -> usize {
        self.in_flight
            .iter()
            .position(|m| m.seq == seq)
            .expect("message is not in flight")
    }

    fn take_msg(&mut self, seq: u64) -> PendingMsg<N::Msg> {
        let pos = self.msg_pos(seq);
        self.in_flight.remove(pos)
    }

    /// Index of `site`'s earliest pending timer by `(deadline, id)`.
    fn earliest_timer(&self, site: SiteId) -> Option<usize> {
        self.timers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.site == site)
            .min_by_key(|(_, t)| (t.deadline, t.id))
            .map(|(i, _)| i)
    }

    /// Runs one handler on `site`'s node and folds its effects into
    /// the host state.
    fn invoke(&mut self, site: SiteId, f: impl FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Timer>)) {
        let mut effects: Vec<Effect<N::Msg, N::Timer>> = Vec::new();
        {
            let slot = self.nodes.get_mut(&site).expect("unknown site");
            let mut ctx = Ctx {
                self_id: site,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
            };
            f(&mut slot.node, &mut ctx);
        }
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    // Sends to non-member sites (client replies to an
                    // [`ControlledHost::inject`] source) fall into the
                    // external sink: they cannot influence the system
                    // under test, so keeping them in flight would only
                    // multiply states.
                    if !self.nodes.contains_key(&to) {
                        continue;
                    }
                    self.in_flight.push(PendingMsg {
                        seq: self.next_seq,
                        from: site,
                        to,
                        msg,
                    });
                    self.next_seq += 1;
                }
                Effect::SetTimer { id, delay, timer } => {
                    self.timers.push(PendingTimer {
                        site,
                        id,
                        deadline: self.now + delay,
                        timer,
                    });
                }
                Effect::CancelTimer(id) => {
                    self.timers.retain(|t| !(t.site == site && t.id == id));
                }
                Effect::Annotate(_) => {}
            }
        }
    }
}

impl<N: Process + fmt::Debug> fmt::Debug for ControlledHost<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlledHost")
            .field("now", &self.now)
            .field("in_flight", &self.in_flight.len())
            .field("timers", &self.timers.len())
            .field(
                "down",
                &self
                    .nodes
                    .iter()
                    .filter(|(_, s)| !s.up)
                    .map(|(&s, _)| s)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Label;
    use crate::time::Duration;

    #[derive(Clone, Debug)]
    enum M {
        Ping,
        Pong,
    }
    impl Label for M {
        fn label(&self) -> &'static str {
            "M"
        }
    }

    /// s0 pings everyone at start; receivers pong back; s0 counts pongs.
    /// Every node arms one timer at start.
    #[derive(Clone, Debug, Default)]
    struct Node {
        pongs: u32,
        fired: u32,
        crashes: u32,
    }

    impl Process for Node {
        type Msg = M;
        type Timer = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, M, u8>) {
            if ctx.id() == SiteId(0) {
                ctx.send(SiteId(1), M::Ping);
                ctx.send(SiteId(2), M::Ping);
            }
            ctx.set_timer(Duration(10), 7);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, M, u8>, from: SiteId, msg: M) {
            match msg {
                M::Ping => ctx.send(from, M::Pong),
                M::Pong => self.pongs += 1,
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, u8>, _id: TimerId, _t: u8) {
            self.fired += 1;
        }

        fn on_crash(&mut self, _now: Time) {
            self.crashes += 1;
        }
    }

    impl Fingerprint for Node {
        fn fingerprint(&self, _now: Time, h: &mut FastHasher) {
            h.write_u32(self.pongs);
            h.write_u32(self.fired);
            h.write_u32(self.crashes);
        }
    }

    fn host(cfg: HostConfig) -> ControlledHost<Node> {
        ControlledHost::new(cfg, (0..3).map(|i| (SiteId(i), Node::default())))
    }

    #[test]
    fn start_effects_become_choices() {
        let h = host(HostConfig::default());
        let choices = h.enabled_choices();
        // Two pings in flight + three timers, no fault budget.
        assert_eq!(
            choices
                .iter()
                .filter(|c| matches!(c, Choice::Deliver { .. }))
                .count(),
            2
        );
        assert_eq!(
            choices
                .iter()
                .filter(|c| matches!(c, Choice::Fire { .. }))
                .count(),
            3
        );
        assert!(!choices.iter().any(|c| matches!(c, Choice::Crash { .. })));
    }

    #[test]
    fn deliver_runs_handler_and_queues_reply() {
        let mut h = host(HostConfig::default());
        let seq = h.in_flight()[0].seq;
        h.apply(Choice::Deliver { seq });
        // Ping consumed, pong queued.
        assert_eq!(h.in_flight().len(), 2);
        assert!(h.in_flight().iter().all(|m| m.seq != seq));
        let pong = h.in_flight().iter().find(|m| m.to == SiteId(0)).unwrap();
        h.apply(Choice::Deliver { seq: pong.seq });
        assert_eq!(h.node(SiteId(0)).pongs, 1);
    }

    #[test]
    fn fire_advances_clock_to_deadline_only_forward() {
        let mut h = host(HostConfig::default());
        h.apply(Choice::Fire { site: SiteId(1) });
        assert_eq!(h.now(), Time(10));
        assert_eq!(h.node(SiteId(1)).fired, 1);
        // A second fire with the same deadline does not move time back.
        h.apply(Choice::Fire { site: SiteId(2) });
        assert_eq!(h.now(), Time(10));
    }

    #[test]
    fn crash_consumes_budget_invalidates_timers_and_swallows_deliveries() {
        let mut h = host(HostConfig {
            crash_sites: vec![SiteId(1)],
            max_crashes: 1,
            ..HostConfig::default()
        });
        assert!(h
            .enabled_choices()
            .contains(&Choice::Crash { site: SiteId(1) }));
        h.apply(Choice::Crash { site: SiteId(1) });
        assert!(!h.is_up(SiteId(1)));
        assert_eq!(h.node(SiteId(1)).crashes, 1);
        // Budget spent: no further crash enabled; timer of s1 is gone.
        assert!(!h
            .enabled_choices()
            .iter()
            .any(|c| matches!(c, Choice::Crash { .. })));
        assert!(!h
            .enabled_choices()
            .contains(&Choice::Fire { site: SiteId(1) }));
        // Delivering the ping to the dead s1 consumes it silently.
        let seq = h
            .in_flight()
            .iter()
            .find(|m| m.to == SiteId(1))
            .unwrap()
            .seq;
        let before = h.in_flight().len();
        h.apply(Choice::Deliver { seq });
        assert_eq!(h.in_flight().len(), before - 1);
    }

    #[test]
    fn recover_needs_budget_and_a_down_site() {
        let mut h = host(HostConfig {
            crash_sites: vec![SiteId(2)],
            max_crashes: 1,
            max_recoveries: 1,
            ..HostConfig::default()
        });
        assert!(!h
            .enabled_choices()
            .iter()
            .any(|c| matches!(c, Choice::Recover { .. })));
        h.apply(Choice::Crash { site: SiteId(2) });
        assert!(h
            .enabled_choices()
            .contains(&Choice::Recover { site: SiteId(2) }));
        h.apply(Choice::Recover { site: SiteId(2) });
        assert!(h.is_up(SiteId(2)));
    }

    #[test]
    fn duplicate_clones_with_fresh_seq() {
        let mut h = host(HostConfig {
            max_duplicates: 1,
            ..HostConfig::default()
        });
        let seq = h.in_flight()[0].seq;
        h.apply(Choice::Duplicate { seq });
        assert_eq!(h.in_flight().len(), 3);
        let seqs: Vec<u64> = h.in_flight().iter().map(|m| m.seq).collect();
        let mut dedup = seqs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seqs.len(), "duplicate must get a fresh seq");
    }

    #[test]
    fn cloned_hosts_diverge_independently() {
        let h = host(HostConfig::default());
        let mut a = h.clone();
        let mut b = h.clone();
        let seq = h.in_flight()[0].seq;
        a.apply(Choice::Deliver { seq });
        b.apply(Choice::Fire { site: SiteId(0) });
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(h.in_flight().len(), 2, "original untouched");
    }

    #[test]
    fn commuted_independent_deliveries_merge_to_one_fingerprint() {
        let h = host(HostConfig::default());
        let s1 = h.in_flight()[0].seq; // to s1
        let s2 = h.in_flight()[1].seq; // to s2
        let mut ab = h.clone();
        ab.apply(Choice::Deliver { seq: s1 });
        ab.apply(Choice::Deliver { seq: s2 });
        let mut ba = h.clone();
        ba.apply(Choice::Deliver { seq: s2 });
        ba.apply(Choice::Deliver { seq: s1 });
        // Different histories (different seq assignment for the pongs),
        // same state: the canonical hash must agree.
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn drop_is_budgeted() {
        let mut h = host(HostConfig {
            max_drops: 1,
            ..HostConfig::default()
        });
        let seq = h.in_flight()[0].seq;
        h.apply(Choice::Drop { seq });
        assert_eq!(h.in_flight().len(), 1);
        assert!(!h
            .enabled_choices()
            .iter()
            .any(|c| matches!(c, Choice::Drop { .. })));
    }

    #[test]
    fn injected_message_delivers_and_reply_to_external_site_is_sunk() {
        let mut h = host(HostConfig::default());
        // Drain the start pings (and the pongs they trigger) first.
        while let Some(m) = h.in_flight().first() {
            let seq = m.seq;
            h.apply(Choice::Deliver { seq });
        }
        assert!(h.in_flight().is_empty());
        // A client outside the node set pings s1; the pong reply goes
        // back to the external id and must be absorbed, not queued.
        h.inject(SiteId(99), SiteId(1), M::Ping);
        let seq = h.in_flight()[0].seq;
        h.apply(Choice::Deliver { seq });
        assert!(
            h.in_flight().is_empty(),
            "reply to external site must be sunk"
        );
    }

    /// Each site arms one timer with a site-dependent deadline.
    #[derive(Clone, Debug, Default)]
    struct Skewed;

    impl Process for Skewed {
        type Msg = M;
        type Timer = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, M, u8>) {
            ctx.set_timer(Duration(10 + u64::from(ctx.id().0)), 0);
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, M, u8>, _from: SiteId, _msg: M) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, M, u8>, _id: TimerId, _t: u8) {}
    }

    impl Fingerprint for Skewed {
        fn fingerprint(&self, _now: Time, _h: &mut FastHasher) {}
    }

    #[test]
    fn ordered_fires_restricts_to_the_global_minimum_deadline() {
        let mk = |policy| {
            ControlledHost::new(
                HostConfig {
                    fire_policy: policy,
                    crash_sites: vec![SiteId(0)],
                    max_crashes: 1,
                    ..HostConfig::default()
                },
                (0..3).map(|i| (SiteId(i), Skewed)),
            )
        };
        let fires = |h: &ControlledHost<Skewed>| -> Vec<SiteId> {
            h.enabled_choices()
                .iter()
                .filter_map(|c| match c {
                    Choice::Fire { site } => Some(*site),
                    _ => None,
                })
                .collect()
        };

        // Free fires: any site may time out next (clock drift model).
        assert_eq!(
            fires(&mk(FirePolicy::Free)),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );

        // Ordered fires: only the globally earliest deadline is enabled,
        // and consuming it hands the floor to the next site.
        let mut h = mk(FirePolicy::Ordered);
        assert_eq!(fires(&h), vec![SiteId(0)]);
        h.apply(Choice::Fire { site: SiteId(0) });
        assert_eq!(fires(&h), vec![SiteId(1)]);

        // A crashed site's timers no longer hold the floor down.
        let mut h = mk(FirePolicy::Ordered);
        h.apply(Choice::Crash { site: SiteId(0) });
        assert_eq!(fires(&h), vec![SiteId(1)]);
    }

    #[test]
    fn ordered_fires_keeps_ties_nondeterministic() {
        // All three Nodes arm Duration(10): equal deadlines stay a
        // genuine choice even under ordered fires.
        let h = host(HostConfig {
            fire_policy: FirePolicy::Ordered,
            ..HostConfig::default()
        });
        let n = h
            .enabled_choices()
            .iter()
            .filter(|c| matches!(c, Choice::Fire { .. }))
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn lazy_fires_wait_for_the_wire_to_drain() {
        // s0 pings s1 and s2 at start; every site arms a timer at 10.
        let mut h = host(HostConfig {
            fire_policy: FirePolicy::Lazy,
            ..HostConfig::default()
        });
        let fire_count = |h: &ControlledHost<Node>| {
            h.enabled_choices()
                .iter()
                .filter(|c| matches!(c, Choice::Fire { .. }))
                .count()
        };
        // Messages in flight: every timer is muted.
        assert_eq!(fire_count(&h), 0);
        // Drain the pings and the pongs they trigger.
        while let Some(m) = h.in_flight().first() {
            let seq = m.seq;
            h.apply(Choice::Deliver { seq });
        }
        // Silence: the (tied) timers become choices again.
        assert_eq!(fire_count(&h), 3);
    }

    #[test]
    fn describe_renders_payloads() {
        let h = host(HostConfig::default());
        let seq = h.in_flight()[0].seq;
        let d = h.describe(Choice::Deliver { seq });
        assert!(d.contains("Ping"), "{d}");
        let f = h.describe(Choice::Fire { site: SiteId(0) });
        assert!(f.contains("s0"), "{f}");
    }
}
