//! Core identifiers shared by every layer of the system.
//!
//! A [`SiteId`] names a database site (a node of the distributed system).
//! Sites are the unit of failure in the paper's model: a site crashes and
//! recovers as a whole, and network partitions separate *sites*.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a database site (node).
///
/// Sites are small dense integers so they can be used as indices into
/// per-site tables. Display renders as `s<N>` to match the paper's
/// `site1`, `site2`, ... naming.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Returns the raw index of this site.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

/// Convenience constructor for a contiguous range of sites `s0..s<n>`.
pub fn sites(n: u32) -> Vec<SiteId> {
    (0..n).map(SiteId).collect()
}

/// Identifier of a timer set by a process.
///
/// Timer ids are unique per simulation run; cancelled timers never fire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TimerId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_display_matches_paper_naming() {
        assert_eq!(SiteId(3).to_string(), "s3");
        assert_eq!(format!("{:?}", SiteId(0)), "s0");
    }

    #[test]
    fn sites_builds_contiguous_range() {
        let v = sites(4);
        assert_eq!(v, vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
    }

    #[test]
    fn site_id_ordering_is_numeric() {
        assert!(SiteId(2) < SiteId(10));
        assert_eq!(SiteId(7).index(), 7);
    }
}
