//! The process abstraction: sans-IO nodes driven by the simulator.
//!
//! A [`Process`] is a state machine owned by the simulator, invoked on
//! message delivery, timer expiry, startup and recovery. All effects
//! (sends, timers) are issued through the [`Ctx`] handle and applied by
//! the driver after the handler returns, which keeps handlers pure and
//! replayable.

use crate::ids::{SiteId, TimerId};
use crate::time::{Duration, Time};
use rand::rngs::SmallRng;
use std::fmt;

/// Message payloads must be cheaply clonable, debuggable, and provide a
/// short static label used for per-kind message statistics.
pub trait Label {
    /// A short static name for this message kind (e.g. `"VOTE-REQ"`).
    fn label(&self) -> &'static str {
        "msg"
    }
}

/// A node of the simulated distributed system.
pub trait Process {
    /// Message payload exchanged between processes.
    type Msg: Clone + fmt::Debug + Label;
    /// Timer payload delivered back to the process on expiry.
    type Timer: Clone + fmt::Debug;

    /// Invoked once at simulation start (virtual time zero).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }

    /// Invoked when a message from `from` is delivered to this process.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        from: SiteId,
        msg: Self::Msg,
    );

    /// Invoked when a timer set by this process fires.
    fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        id: TimerId,
        timer: Self::Timer,
    );

    /// Invoked when the site crashes. Implementations should discard
    /// volatile state here; durable state must survive.
    fn on_crash(&mut self, now: Time) {
        let _ = now;
    }

    /// Invoked when the site recovers after a crash.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }
}

/// Buffered effect emitted by a handler, applied by the driver afterwards.
#[derive(Debug)]
pub(crate) enum Effect<M, T> {
    Send {
        to: SiteId,
        msg: M,
    },
    SetTimer {
        id: TimerId,
        delay: Duration,
        timer: T,
    },
    CancelTimer(TimerId),
    Annotate(String),
}

/// Handler context: the only way a process can affect the world.
pub struct Ctx<'a, M, T> {
    pub(crate) self_id: SiteId,
    pub(crate) now: Time,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) effects: &'a mut Vec<Effect<M, T>>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// The id of the process being invoked.
    pub fn id(&self) -> SiteId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Deterministic per-run random source (shared across all processes).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to`. Sending to self is delivered like any other
    /// message (subject to delay, not loss).
    pub fn send(&mut self, to: SiteId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends a clone of `msg` to every site in `targets`.
    pub fn broadcast(&mut self, targets: impl IntoIterator<Item = SiteId>, msg: M)
    where
        M: Clone,
    {
        for to in targets {
            self.effects.push(Effect::Send {
                to,
                msg: msg.clone(),
            });
        }
    }

    /// Schedules `timer` to fire after `delay`. Returns an id usable with
    /// [`Ctx::cancel_timer`]. Timers die with the site: a crash invalidates
    /// all timers set before it.
    pub fn set_timer(&mut self, delay: Duration, timer: T) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer { id, delay, timer });
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Records a free-form annotation in the simulation trace (debugging
    /// and experiment narration).
    pub fn annotate(&mut self, text: impl Into<String>) {
        self.effects.push(Effect::Annotate(text.into()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    struct M;
    impl Label for M {
        fn label(&self) -> &'static str {
            "M"
        }
    }

    #[test]
    fn ctx_buffers_effects_in_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut effects: Vec<Effect<M, u8>> = Vec::new();
        let mut next = 0;
        let mut ctx = Ctx {
            self_id: SiteId(1),
            now: Time(5),
            rng: &mut rng,
            effects: &mut effects,
            next_timer_id: &mut next,
        };
        ctx.send(SiteId(2), M);
        let t = ctx.set_timer(Duration(10), 42u8);
        ctx.cancel_timer(t);
        assert_eq!(ctx.now(), Time(5));
        assert_eq!(ctx.id(), SiteId(1));
        assert_eq!(effects.len(), 3);
        assert!(matches!(effects[0], Effect::Send { to: SiteId(2), .. }));
        assert!(matches!(
            effects[1],
            Effect::SetTimer {
                id: TimerId(0),
                delay: Duration(10),
                timer: 42
            }
        ));
        assert!(matches!(effects[2], Effect::CancelTimer(TimerId(0))));
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut effects: Vec<Effect<M, u8>> = Vec::new();
        let mut next = 7;
        let mut ctx = Ctx {
            self_id: SiteId(0),
            now: Time(0),
            rng: &mut rng,
            effects: &mut effects,
            next_timer_id: &mut next,
        };
        let a = ctx.set_timer(Duration(1), 0);
        let b = ctx.set_timer(Duration(1), 0);
        assert_ne!(a, b);
        assert_eq!(b, TimerId(8));
    }
}
