//! Virtual time.
//!
//! The simulator advances a discrete virtual clock measured in abstract
//! *ticks*. The paper parameterises its timeouts by `T`, the longest
//! end-to-end propagation delay of the network; configurations express
//! delays and timeouts as multiples of that bound (`2T` for ack
//! collection, `3T` for coordinator-silence detection).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Saturating subtraction returning a duration.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of virtual time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Multiplies the duration by an integer factor (used for `2T`, `3T`).
    #[inline]
    pub fn times(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        assert_eq!(Time(5) + Duration(3), Time(8));
        let mut t = Time(1);
        t += Duration(2);
        assert_eq!(t, Time(3));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Time(3).since(Time(5)), Duration(0));
        assert_eq!(Time(9).since(Time(4)), Duration(5));
        assert_eq!(Time(9) - Time(4), Duration(5));
    }

    #[test]
    fn duration_times_models_paper_timeouts() {
        let t = Duration(10); // max end-to-end delay T
        assert_eq!(t.times(2), Duration(20)); // 2T ack window
        assert_eq!(t.times(3), Duration(30)); // 3T coordinator silence
    }
}
