//! A deterministic, allocation-free hasher for small integer keys.
//!
//! The hot maps of the system (per-site item stores, per-site
//! transaction tables) are keyed by `u32`/`u64` newtype ids and only
//! ever accessed by key. `std`'s default SipHash is both slower than
//! the lookup it guards for such keys and seeded per-process via
//! `RandomState`, which would make any accidental iteration
//! nondeterministic *between* runs. This hasher is a fixed-key
//! multiply-xor finalizer (the `splitmix64`-style mixer): fast,
//! deterministic across runs and platforms, and of ample quality for
//! id-shaped keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over little-endian words.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // splitmix64 finalizer: full avalanche over one 64-bit word.
        let mut z = self.0 ^ v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64)
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64)
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64)
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v)
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64)
    }
}

/// `BuildHasher` for [`FastHasher`]: zero-sized, fixed-keyed, so two
/// maps (and two runs) hash identically.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by the deterministic fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FastBuildHasher::default();
        let b = FastBuildHasher::default();
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash_one(v), b.hash_one(v));
        }
    }

    #[test]
    fn nearby_keys_scatter() {
        let b = FastBuildHasher::default();
        let hashes: Vec<u64> = (0u32..64).map(|v| b.hash_one(v)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collisions on tiny keys");
        // Low bits (the bucket index) must differ for adjacent keys.
        assert_ne!(hashes[0] & 0xff, hashes[1] & 0xff);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(7, "x");
        m.insert(9, "y");
        assert_eq!(m.get(&7), Some(&"x"));
        assert_eq!(m.get(&8), None);
        assert_eq!(m.len(), 2);
    }
}
