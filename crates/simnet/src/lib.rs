//! # qbc-simnet — deterministic discrete-event network simulator
//!
//! The substrate on which the quorum-based commit and termination
//! protocols of Huang & Li (ICDE 1988) are evaluated. The paper's failure
//! model — *arbitrary concurrent site failures, lost messages and network
//! partitioning* — is reproduced exactly:
//!
//! * **Virtual time** with a bounded message delay `T` ([`DelayModel`]),
//!   from which the protocol timeouts `2T` and `3T` are derived.
//! * **Partitions** into arbitrary disjoint components, dynamic
//!   re-partitioning and healing ([`Topology`]).
//! * **Message loss**, both random (probability per message) and
//!   adversarial (directed link blocks, needed for the paper's Example 3).
//! * **Site crashes and recoveries** with crash-epoch timer invalidation.
//!
//! Determinism: a run is a pure function of `(seed, node set, schedule)`.
//! All experiments in this repository are reproducible byte-for-byte.
//!
//! ## Example
//!
//! ```
//! use qbc_simnet::{Ctx, DelayModel, Duration, Label, Process, Sim, SimConfig, SiteId, Time, TimerId};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Label for Ping {
//!     fn label(&self) -> &'static str { "PING" }
//! }
//!
//! #[derive(Default)]
//! struct Node { pings: u32 }
//!
//! impl Process for Node {
//!     type Msg = Ping;
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, ()>) {
//!         if ctx.id() == SiteId(0) { ctx.send(SiteId(1), Ping); }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, Ping, ()>, _from: SiteId, _msg: Ping) {
//!         self.pings += 1;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Ping, ()>, _id: TimerId, _t: ()) {}
//! }
//!
//! let mut sim = Sim::new(SimConfig::default(), [
//!     (SiteId(0), Node::default()),
//!     (SiteId(1), Node::default()),
//! ]);
//! sim.run_to_quiescence(1_000);
//! assert_eq!(sim.node(SiteId(1)).pings, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod driver;
mod fasthash;
pub mod host;
mod ids;
mod process;
mod sim;
pub mod threaded;
mod time;
mod topology;
mod trace;

pub use driver::NodeDriver;
pub use fasthash::{FastBuildHasher, FastHasher, FastMap};
pub use host::{Choice, ControlledHost, Fingerprint, FirePolicy, HostConfig};
pub use ids::{sites, SiteId, TimerId};
pub use process::{Ctx, Label, Process};
pub use sim::{DelayModel, Quiescence, Sim, SimConfig};
pub use time::{Duration, Time};
pub use topology::{DropReason, Topology};
pub use trace::{NetStats, TraceEvent};
