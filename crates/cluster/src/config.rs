//! Cluster-wide configuration.

use qbc_core::ProtocolKind;
use qbc_obs::ObsConfig;
use qbc_simnet::Duration;
use std::path::PathBuf;

/// Shape and tuning of a sharded cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards. Each shard is an independent replica group
    /// running its own commit protocol instances.
    pub shards: u32,
    /// Sites per shard. Site ids are allocated contiguously:
    /// shard `k` owns sites `k*sites_per_shard .. (k+1)*sites_per_shard`.
    pub sites_per_shard: u32,
    /// Copies per item (placed round-robin within the shard's sites);
    /// must not exceed `sites_per_shard`.
    pub replication: u32,
    /// Items per shard. Global ids are contiguous per shard: shard `k`
    /// owns items `k*items_per_shard .. (k+1)*items_per_shard`.
    pub items_per_shard: u32,
    /// Read quorum per item (votes; copies carry one vote each).
    pub read_quorum: u32,
    /// Write quorum per item.
    pub write_quorum: u32,
    /// Commit protocol every transaction runs.
    pub protocol: ProtocolKind,
    /// Longest end-to-end network delay `T`; protocol timeouts derive
    /// from it.
    pub t_bound: Duration,
    /// RNG seed of the deterministic substrate.
    pub seed: u64,
    /// Enable group-commit batching at every site
    /// (see [`qbc_db::NodeConfig::group_commit`]).
    pub group_commit: bool,
    /// Batch window; `None` keeps the per-node default (`T/2`).
    pub group_commit_window: Option<Duration>,
    /// Force a batch early at this many staged records.
    pub group_commit_max_batch: usize,
    /// Size each site's group-commit window from the observed
    /// log-device backlog instead of the static constant (see
    /// [`qbc_db::NodeConfig::adaptive_commit_window`]). Off by default.
    pub adaptive_commit_window: bool,
    /// Simulated latency of one WAL force (serial log device).
    pub force_latency: Duration,
    /// Retire decided per-transaction state at every site this long
    /// after the decision (see [`qbc_db::NodeConfig::retire_after`]).
    /// `None` (the default) keeps every entry forever.
    pub retire_after: Option<Duration>,
    /// Age retired outcome records out of the compact maps entirely
    /// this long after retirement (see
    /// [`qbc_db::NodeConfig::retire_horizon`]), so checkpoints are
    /// O(live + horizon) rather than O(history). Pick a horizon several
    /// times the widest straggler/retry window. `None` (the default)
    /// keeps retired outcomes forever.
    pub retire_horizon: Option<Duration>,
    /// Root directory for file-backed WALs: site `k` logs to
    /// `<wal_dir>/site-<k>`. `None` (the default) keeps the
    /// deterministic in-memory backend at every site. Reopening an
    /// existing root recovers the existing logs: each node replays its
    /// retained records on startup, before serving anything (the
    /// crash/restart tests rebuild whole clusters this way). The
    /// front-end's transaction-id counter is primed past the largest id
    /// with any durable trace across the reopened logs, so a restarted
    /// cluster can take new submissions without colliding with its
    /// previous incarnation's ids.
    pub wal_dir: Option<PathBuf>,
    /// Segment roll threshold for file-backed WALs, in bytes.
    pub wal_segment_bytes: u64,
    /// `fsync` every file-WAL force (see
    /// [`qbc_db::WalBackendConfig::File`]). Benchmarks measuring the
    /// real device keep this on; logical crash/restart tests turn it
    /// off for speed.
    pub wal_fsync: bool,
    /// Per-site checkpoint + log-truncation period (see
    /// [`qbc_db::NodeConfig::checkpoint_interval`]); pair with
    /// [`ClusterConfig::retire_after`], since live transactions pin
    /// the log. `None` (the default) never truncates.
    pub checkpoint_interval: Option<Duration>,
    /// Per-site byte-threshold checkpoint trigger (see
    /// [`qbc_db::NodeConfig::checkpoint_bytes`]): checkpoint when this
    /// many encoded log bytes accumulate since the last one, so a site
    /// with a skewed write rate truncates by growth, not just by clock.
    /// `None` (the default) leaves the timer as the only trigger.
    pub checkpoint_bytes: Option<u64>,
    /// Enable MVCC snapshot reads at every site: multi-version item
    /// stores, commit-stable watermark exchange piggybacked on protocol
    /// messages, and the [`crate::SimCluster::snapshot_read_at`] path
    /// that never blocks on pinned copies. Off by default (and the
    /// golden digests require it off: the piggyback changes the wire).
    pub snapshot_reads: bool,
    /// Versions retained per item when `snapshot_reads` is on (≥ 1;
    /// ignored otherwise — single-version stores keep exactly 1).
    pub version_retention: usize,
    /// Observability layer (protocol tracing, metrics registry, flight
    /// recorder). Disabled by default: no observer is constructed at
    /// all, so the simulator hot path — and the golden digests — are
    /// byte-identical to the uninstrumented build.
    pub obs: ObsConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            sites_per_shard: 3,
            replication: 3,
            items_per_shard: 8,
            read_quorum: 2,
            write_quorum: 2,
            protocol: ProtocolKind::QuorumCommit2,
            t_bound: Duration(10),
            seed: 0,
            group_commit: false,
            group_commit_window: None,
            group_commit_max_batch: 64,
            adaptive_commit_window: false,
            force_latency: Duration::ZERO,
            retire_after: None,
            retire_horizon: None,
            wal_dir: None,
            wal_segment_bytes: 4 << 20,
            wal_fsync: true,
            checkpoint_interval: None,
            checkpoint_bytes: None,
            snapshot_reads: false,
            version_retention: 1,
            obs: ObsConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Total number of sites across all shards.
    pub fn total_sites(&self) -> u32 {
        self.shards * self.sites_per_shard
    }

    /// Total number of items across all shards.
    pub fn total_items(&self) -> u32 {
        self.shards * self.items_per_shard
    }

    /// Enables group commit (builder style).
    pub fn with_group_commit(mut self) -> Self {
        self.group_commit = true;
        self
    }

    /// Sizes the group-commit window adaptively from the live
    /// `wal_backlog` gauge (builder style).
    pub fn with_adaptive_commit_window(mut self) -> Self {
        self.adaptive_commit_window = true;
        self
    }

    /// Enables the observability layer (builder style).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the simulated WAL force latency (builder style).
    pub fn with_force_latency(mut self, latency: Duration) -> Self {
        self.force_latency = latency;
        self
    }

    /// Sets the decided-state retention window (builder style).
    pub fn with_retirement(mut self, after: Duration) -> Self {
        self.retire_after = Some(after);
        self
    }

    /// Sets the retired-outcome aging horizon (builder style; see
    /// [`ClusterConfig::retire_horizon`]).
    pub fn with_retire_horizon(mut self, horizon: Duration) -> Self {
        self.retire_horizon = Some(horizon);
        self
    }

    /// Runs every site on a file-backed WAL under `root` (builder
    /// style).
    pub fn with_wal_dir(mut self, root: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(root.into());
        self
    }

    /// Enables periodic checkpointing + log truncation at every site
    /// (builder style).
    pub fn with_checkpoints(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Adds the byte-threshold checkpoint trigger (builder style).
    pub fn with_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = Some(bytes);
        self
    }

    /// Enables MVCC snapshot reads with the given per-item version
    /// retention (builder style; retention is clamped to ≥ 1).
    pub fn with_snapshot_reads(mut self, retention: usize) -> Self {
        self.snapshot_reads = true;
        self.version_retention = retention.max(1);
        self
    }

    /// Panics unless the shape is internally consistent (quorums valid,
    /// replication feasible).
    pub fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.sites_per_shard > 0, "need at least one site per shard");
        assert!(self.items_per_shard > 0, "need at least one item per shard");
        assert!(
            self.replication > 0 && self.replication <= self.sites_per_shard,
            "replication must be in 1..=sites_per_shard"
        );
        let total = self.replication;
        assert!(
            self.read_quorum >= 1 && self.read_quorum <= total,
            "r must be in 1..=total votes"
        );
        assert!(self.write_quorum <= total, "w must not exceed total votes");
        assert!(
            self.read_quorum + self.write_quorum > total,
            "r + w must exceed total votes (Gifford)"
        );
        assert!(
            2 * self.write_quorum > total,
            "w must exceed half the total votes (Gifford)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let cfg = ClusterConfig::default();
        cfg.validate();
        assert_eq!(cfg.total_sites(), 6);
        assert_eq!(cfg.total_items(), 16);
    }

    #[test]
    #[should_panic(expected = "r + w")]
    fn bad_quorums_are_rejected() {
        ClusterConfig {
            read_quorum: 1,
            write_quorum: 1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "r must be in")]
    fn oversized_read_quorum_is_rejected() {
        ClusterConfig {
            read_quorum: 4,
            write_quorum: 2,
            replication: 3,
            ..Default::default()
        }
        .validate();
    }
}
