//! # qbc-cluster — sharded cluster runtime
//!
//! The seed reproduces Huang & Li's commit/termination protocols one
//! choreographed scenario at a time. This crate turns those per-site
//! engines into a *runtime*: many shards, many concurrent client
//! transactions, group-commit batching underneath, and live metrics on
//! top.
//!
//! * [`ClusterConfig`]/[`ShardMap`] — partition a global item space into
//!   shards, each replicated over its own site group with Gifford
//!   quorums; coordinators are placed round-robin within a shard.
//! * [`SimCluster`] + [`Session`] — the client front-end on the
//!   deterministic simulator: `submit` returns a [`TxnHandle`] without
//!   waiting, any number of transactions run concurrently, and
//!   `await_decision`/`decision` resolve handles later. [`ReadHandle`]s
//!   do the same for quorum reads.
//! * [`ThreadedCluster`] — the same cluster on the real-time threaded
//!   transport, driven through the `NetMsg::BeginTxn` wire request.
//! * [`ClusterMetrics`] — per-shard commit/abort/blocked counters,
//!   client-observed latency histograms, in-flight queue depths and WAL
//!   force counts, harvestable mid-run.
//! * [`AtomicityViolation`] — the cluster-level consistency check: no
//!   transaction may commit at one participant and abort at another.
//!
//! Transactions are single-shard (the shard of their writeset's items);
//! cross-shard transactions are an open ROADMAP item. Group commit
//! (`qbc_db::NodeConfig::group_commit`, `force_latency`) is configured
//! per cluster here and exercised by `e13_cluster_throughput`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod harvest;
mod metrics;
mod shard;
mod sim_cluster;
mod threaded_cluster;

pub use config::ClusterConfig;
pub use metrics::{AtomicityViolation, ClusterMetrics, LatencyHistogram, ShardMetrics};
pub use shard::{ShardId, ShardMap};
pub use sim_cluster::{ReadHandle, Session, SimCluster, TxnHandle, TxnStatus};
pub use threaded_cluster::{ClusterReport, ThreadedCluster};
