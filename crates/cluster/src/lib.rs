//! # qbc-cluster — sharded cluster runtime
//!
//! The seed reproduces Huang & Li's commit/termination protocols one
//! choreographed scenario at a time. This crate turns those per-site
//! engines into a *runtime*: many shards, many concurrent client
//! transactions, group-commit batching underneath, and live metrics on
//! top.
//!
//! * [`ClusterConfig`]/[`ShardMap`] — partition a global item space into
//!   shards, each replicated over its own site group with Gifford
//!   quorums; coordinators are placed round-robin within a shard.
//! * [`SimCluster`] + [`Session`] — the client front-end on the
//!   deterministic simulator: `submit` returns a [`TxnHandle`] without
//!   waiting, any number of transactions run concurrently, and
//!   `await_decision`/`decision` resolve handles later. [`ReadHandle`]s
//!   do the same for quorum reads.
//! * [`ThreadedCluster`] — the same cluster on the real-time threaded
//!   transport, driven through the `NetMsg::BeginTxn` wire request.
//! * [`ReactorCluster`] — the same cluster on the event-driven
//!   `qbc-reactor` transport: every site plus the client front door
//!   multiplexed onto a small fixed pool of event-loop workers, client
//!   sessions as future-style [`Handle`]s over framed sockets, sites
//!   killable mid-run with automatic rerouting and client
//!   resubmission. See `docs/async-runtime.md`.
//! * [`ClusterMetrics`] — per-shard commit/abort/blocked counters,
//!   client-observed latency histograms, in-flight queue depths and WAL
//!   force counts, harvestable mid-run.
//! * [`AtomicityViolation`] — the cluster-level consistency check: no
//!   transaction may commit at one participant and abort at another.
//!
//! Writesets may span shards: a cross-shard submission is split into
//! per-shard *branches* driven by a top-level two-phase commit (the
//! `XTxnCoordinator` engine of `qbc-core`, hosted at the home shard's
//! coordinator site). Each branch runs the paper's quorum commit up to
//! its in-shard commit point, holds there, and votes upward; the
//! durably logged cross-shard decision is relayed to every branch and
//! rediscovered by orphaned sites, so the atomicity audit holds over
//! the whole shard set. Group commit
//! (`qbc_db::NodeConfig::group_commit`, `force_latency`) is configured
//! per cluster here and exercised by `e13_cluster_throughput`; decided
//! transaction state can be retired after a re-announce window
//! ([`ClusterConfig::retire_after`]) to bound per-site tables.
//!
//! Observability (`qbc-obs`) is opt-in via [`ClusterConfig::obs`]: the
//! cluster then shares one [`Obs`] across its sites, tracing protocol
//! phases, measuring blocking windows and copy pin times, and keeping a
//! per-site flight recorder that dumps on atomicity violations. Export
//! via [`SimCluster::metrics_json`] (deterministic JSON) or
//! [`ClusterReport::prometheus_text`] (Prometheus text format). See
//! `docs/observability.md` for the event model and metric catalog.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod harvest;
pub mod mc_harness;
mod metrics;
mod reactor_cluster;
mod shard;
mod sim_cluster;
mod threaded_cluster;

pub use config::ClusterConfig;
pub use metrics::{AtomicityViolation, ClusterMetrics, LatencyHistogram, ShardMetrics};
pub use qbc_obs::{Obs, ObsConfig, Registry};
pub use qbc_reactor::{ClientStats, Handle, Outcome, PollerKind, ServerStats};
pub use reactor_cluster::{ReactorCluster, ReactorConfig, ReactorReport};
pub use shard::{ShardId, ShardMap};
pub use sim_cluster::{ReadHandle, Session, SimCluster, TxnHandle, TxnStatus};
pub use threaded_cluster::{ClusterReport, ThreadedCluster};
