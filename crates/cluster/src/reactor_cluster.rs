//! The cluster front-end on the event-driven reactor transport.
//!
//! Third substrate, same cluster: the deterministic simulator carries
//! the correctness evidence, the threaded transport demonstrates
//! substrate independence, and this front-end is the *serving* shape —
//! every site plus the client front door multiplexed onto a small
//! fixed pool of `qbc-reactor` event-loop workers, with clients as
//! logical sessions over framed sockets instead of in-process calls.
//!
//! Placement and routing are byte-identical to the other front-ends:
//! the same [`ShardMap`], the same round-robin coordinator rotation
//! (extended to skip killed sites — the reactor is the substrate where
//! sites die mid-run and clients keep submitting), and the same
//! [`ShardMap::xtxn_branches`] split for cross-shard writesets. The
//! differential test in `tests/reactor.rs` holds this front-end to the
//! threaded baseline's decisions.

use crate::config::ClusterConfig;
use crate::harvest::{build_nodes, first_fresh_txn, harvest, make_obs};
use crate::metrics::{AtomicityViolation, ClusterMetrics};
use crate::shard::{ShardId, ShardMap};
use crate::sim_cluster::TxnHandle;
use qbc_core::{Decision, ProtocolKind, TxnId, WriteSet};
use qbc_db::NetMsg;
use qbc_obs::{LatencyHistogram, Obs, Registry};
use qbc_reactor::{
    ClientConfig, ClientStats, Handle, Planner, PollerKind, ReactorClient, ReactorServer,
    ServerConfig, ServerStats,
};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Reactor substrate tuning (the cluster-level knobs stay in
/// [`ClusterConfig`]).
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Event-loop workers hosting the sites and the front door.
    pub workers: usize,
    /// Client connection pool size (sessions are logical and
    /// multiplexed over these).
    pub client_conns: usize,
    /// Poller backend for server and client.
    pub poller: PollerKind,
    /// Per-connection queued-reply bytes before the front door pauses
    /// reading that connection.
    pub write_hwm: usize,
    /// Client resubmission attempts before a session fails.
    pub max_attempts: u32,
    /// In-flight transaction age (ms) before the front door answers
    /// `Rejected` so the client resubmits (see
    /// `qbc_reactor::ServerConfig::txn_timeout_ms`).
    pub txn_timeout_ms: u64,
    /// Optional `SO_SNDBUF` for accepted connections (tests shrink it
    /// to exercise backpressure cheaply).
    pub sockbuf: Option<i32>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 2,
            client_conns: 4,
            poller: PollerKind::default(),
            write_hwm: 256 * 1024,
            max_attempts: 64,
            txn_timeout_ms: 30_000,
            sockbuf: None,
        }
    }
}

/// What the planner records per planned submission, shared with the
/// front-end for the shutdown harvest.
struct PlanState {
    handles: Vec<TxnHandle>,
    xshards: BTreeMap<TxnId, Vec<ShardId>>,
    rr_by_shard: Vec<u64>,
}

/// The [`Planner`] the front door consults: same rotation and branch
/// split as the other substrates, minus whatever sites are down.
struct ClusterPlanner {
    map: ShardMap,
    protocol: ProtocolKind,
    state: Arc<Mutex<PlanState>>,
}

impl ClusterPlanner {
    /// Round-robin coordinator pick skipping down sites; `None` when
    /// the whole shard is down.
    fn pick(
        map: &ShardMap,
        state: &mut PlanState,
        shard: ShardId,
        down: &std::collections::BTreeSet<SiteId>,
    ) -> Option<SiteId> {
        let width = map.sites_of(shard).len();
        for _ in 0..width {
            let n = state.rr_by_shard[shard.0 as usize];
            state.rr_by_shard[shard.0 as usize] += 1;
            let site = map.coordinator(shard, n);
            if !down.contains(&site) {
                return Some(site);
            }
        }
        None
    }
}

impl Planner for ClusterPlanner {
    fn plan_submit(
        &mut self,
        now: Time,
        txn: TxnId,
        writes: &[(ItemId, i64)],
        down: &std::collections::BTreeSet<SiteId>,
    ) -> Option<(SiteId, NetMsg)> {
        let writeset = WriteSet::new(writes.iter().copied());
        if writeset.updates.is_empty() {
            return None;
        }
        let split = self.map.split_writeset(&writeset);
        let (home, _) = split[0];
        let mut state = self.state.lock().expect("plan state");
        let coordinator = Self::pick(&self.map, &mut state, home, down)?;
        let msg = if split.len() == 1 {
            let (_, writeset) = split.into_iter().next().expect("one slice");
            NetMsg::BeginTxn {
                txn,
                writeset,
                protocol: self.protocol,
            }
        } else {
            let shards: Vec<ShardId> = split.iter().map(|(s, _)| *s).collect();
            let mut picks: BTreeMap<ShardId, SiteId> = BTreeMap::new();
            for &s in shards.iter().filter(|&&s| s != home) {
                picks.insert(s, Self::pick(&self.map, &mut state, s, down)?);
            }
            let branches =
                self.map
                    .xtxn_branches(txn, self.protocol, coordinator, home, split, |s| picks[&s]);
            state.xshards.insert(txn, shards);
            NetMsg::BeginXTxn { txn, branches }
        };
        state.handles.push(TxnHandle {
            txn,
            shard: home,
            coordinator,
            submitted_at: now,
        });
        Some((coordinator, msg))
    }

    fn plan_read(
        &mut self,
        item: ItemId,
        down: &std::collections::BTreeSet<SiteId>,
    ) -> Option<SiteId> {
        let shard = self.map.shard_of_item(item)?;
        let mut state = self.state.lock().expect("plan state");
        Self::pick(&self.map, &mut state, shard, down)
    }
}

/// A per-process-unique Unix socket path under the system temp dir.
fn socket_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qbc-reactor-{}-{n}.sock", std::process::id()))
}

/// Final state of a reactor cluster run, computed at shutdown.
#[derive(Debug)]
pub struct ReactorReport {
    /// Outcome of every *accepted* submission attempt (each client
    /// resubmission is a fresh attempt), in planning order.
    pub decisions: Vec<(TxnHandle, Option<Decision>)>,
    /// Per-shard metrics harvested from the final node states.
    pub metrics: ClusterMetrics,
    /// Transactions that terminated inconsistently (must be empty).
    pub atomicity_violations: Vec<AtomicityViolation>,
    /// Reactor front-door counters.
    pub server: ServerStats,
    /// Client-side counters (committed/aborted/failed, resubmits,
    /// reconnects).
    pub client: ClientStats,
    /// Client-observed end-to-end session latency, recorded in
    /// microseconds.
    pub latency: LatencyHistogram,
    /// The cluster's observer, when configured.
    pub obs: Option<Arc<Obs>>,
}

impl ReactorReport {
    /// Renders cluster metrics plus the reactor gauges in the
    /// Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut r = Registry::new();
        self.metrics.fill_registry(&mut r);
        self.server.fill_registry(&mut r);
        r.prometheus_text()
    }
}

/// A sharded cluster served through the event-driven reactor.
pub struct ReactorCluster {
    map: ShardMap,
    server: Option<ReactorServer>,
    client: Option<ReactorClient>,
    state: Arc<Mutex<PlanState>>,
    obs: Option<Arc<Obs>>,
}

impl ReactorCluster {
    /// Boots the server workers on a fresh Unix socket and connects the
    /// client pool.
    pub fn spawn(cfg: ClusterConfig, rcfg: ReactorConfig) -> Self {
        let map = ShardMap::new(&cfg);
        let obs = make_obs(&cfg, &map);
        let nodes = build_nodes(&cfg, &map, obs.as_ref(), true);
        let first_txn = first_fresh_txn(&nodes);
        let state = Arc::new(Mutex::new(PlanState {
            handles: Vec::new(),
            xshards: BTreeMap::new(),
            rr_by_shard: vec![0; cfg.shards as usize],
        }));
        let planner = Box::new(ClusterPlanner {
            map: map.clone(),
            protocol: cfg.protocol,
            state: Arc::clone(&state),
        });
        let path = socket_path();
        let server = ReactorServer::spawn(
            ServerConfig {
                workers: rcfg.workers,
                poller: rcfg.poller,
                write_hwm: rcfg.write_hwm,
                seed: cfg.seed,
                first_txn,
                txn_timeout_ms: rcfg.txn_timeout_ms,
                client_site: SiteId(cfg.total_sites()),
                sockbuf: rcfg.sockbuf,
            },
            nodes,
            planner,
            &path,
        )
        .expect("spawn reactor server");
        let client = ReactorClient::connect(
            &path,
            ClientConfig {
                conns: rcfg.client_conns,
                poller: rcfg.poller,
                max_attempts: rcfg.max_attempts,
            },
        )
        .expect("connect reactor client");
        ReactorCluster {
            map,
            server: Some(server),
            client: Some(client),
            state,
            obs,
        }
    }

    /// The placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shared observer, when configured.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The in-process client (for direct session control — e.g. the
    /// open-loop generator submits through it at a target rate).
    pub fn client(&self) -> &ReactorClient {
        self.client.as_ref().expect("client live")
    }

    /// Starts a write-transaction session; the returned [`Handle`] is a
    /// future (also blockingly awaitable) and resubmits itself through
    /// surviving coordinators on rejection or connection loss.
    pub fn submit(&self, writes: Vec<(ItemId, i64)>) -> Handle {
        self.client().submit(writes)
    }

    /// Starts a snapshot-read session.
    pub fn snapshot_read(&self, item: ItemId) -> Handle {
        self.client().snap_read(item)
    }

    /// Kills a site: it stops being driven, its in-flight traffic is
    /// dropped, and the planner routes around it. In-flight
    /// transactions it coordinated resolve through the survivors'
    /// termination protocol.
    pub fn kill_site(&self, site: SiteId) {
        self.server.as_ref().expect("server live").kill_site(site);
    }

    /// Live reactor front-door counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.as_ref().expect("server live").stats()
    }

    /// The front door's Unix socket (extra raw connections — e.g. a
    /// deliberately slow client in the backpressure test — attach
    /// here).
    pub fn socket(&self) -> &std::path::Path {
        self.server.as_ref().expect("server live").socket_path()
    }

    /// Stops client and server and harvests decisions, metrics and the
    /// atomicity check from the final node states.
    pub fn shutdown(mut self) -> ReactorReport {
        let client = self.client.take().expect("client live");
        let client_stats = client.stats();
        let latency = client.latency();
        client.shutdown();
        let (nodes, server_stats) = self.server.take().expect("server live").shutdown();
        let by_site: BTreeMap<SiteId, &qbc_db::SiteNode> =
            nodes.iter().map(|(s, n)| (*s, n)).collect();
        let state = self.state.lock().expect("plan state");
        let (metrics, atomicity_violations) = harvest(
            &self.map,
            &state.handles,
            &state.xshards,
            &by_site,
            Time(u64::MAX),
        );
        let decisions = state
            .handles
            .iter()
            .map(|h| {
                let shards = state
                    .xshards
                    .get(&h.txn)
                    .cloned()
                    .unwrap_or_else(|| vec![h.shard]);
                let d = shards
                    .iter()
                    .flat_map(|&s| self.map.sites_of(s))
                    .find_map(|s| by_site.get(&s).and_then(|n| n.decision(h.txn)));
                (*h, d)
            })
            .collect();
        if let (Some(obs), Some(v)) = (&self.obs, atomicity_violations.first()) {
            let _ = obs.dump(&format!("atomicity violation: txn {}", v.txn.0));
        }
        ReactorReport {
            decisions,
            metrics,
            atomicity_violations,
            server: server_stats,
            client: client_stats,
            latency,
            obs: self.obs.clone(),
        }
    }
}
