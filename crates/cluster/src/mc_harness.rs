//! Small-configuration hosts and protocol invariants for the model
//! checker (`qbc-mc`).
//!
//! The checker itself is generic over any `simnet` process; what makes
//! it *prove* something about this system lives here: builders for the
//! two canonical exhaustive configurations (a 3-site single-shard
//! quorum commit, and a 2-shard cross-shard commit with a parent
//! crash), plus the invariant functions the ISSUE's safety argument
//! rests on — atomicity, decision stability, and bounded termination.
//!
//! Everything returns plain functions over
//! `ControlledHost<SiteNode>` so the `qbc-mc` dependency stays confined
//! to `dev-dependencies`: production builds of the cluster carry the
//! harness (it is cheap, and the CI smoke binary wants it) but not the
//! checker.
//!
//! The hosts always run the **in-memory WAL** backend: exploration
//! clones states freely, and the file-backed log is deliberately
//! un-clonable (one directory, one log). The durability *contract* is
//! identical by construction — `docs/wal-format.md` and the
//! `file_wal_matches_memory_wal` property pin that equivalence — so
//! what the checker proves about the memory model carries over.

use qbc_core::{Decision, LogRecord, ProtocolKind, TxnId, TxnSpec, WriteSet};
use qbc_db::{build_cluster, NetMsg, NodeConfig, SiteNode};
use qbc_simnet::{ControlledHost, Duration, HostConfig, SiteId};
use qbc_votes::{Catalog, CatalogBuilder, ItemId, Version};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The external client identity used for injected submissions; not a
/// member site, so replies to it are sunk by the host.
pub const CLIENT: SiteId = SiteId(99);

/// The paper's `T` for checker configurations. Small and round: all
/// protocol timeouts are fixed multiples, and the model checker only
/// cares about their relative order.
pub const T_BOUND: Duration = Duration(10);

/// A 3-site, 1-item majority catalog (`r = w = 2`) — the smallest
/// configuration where the quorum argument is non-trivial: one site can
/// fail and both quorums survive.
pub fn three_site_catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at([SiteId(0), SiteId(1), SiteId(2)])
        .quorums(2, 2)
        .build()
        .expect("static catalog")
}

/// A single-shard host: three sites over [`three_site_catalog`], one
/// client transaction (`TxnId(1)`, writing item 0) injected at site 0,
/// fault budgets from `host_cfg`, per-site knobs via `customize`.
///
/// The injected `BeginTxn` is itself a delivery choice, so the checker
/// also explores crash-before-arrival interleavings.
pub fn single_shard_host(
    protocol: ProtocolKind,
    host_cfg: HostConfig,
    customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> ControlledHost<SiteNode> {
    let catalog = three_site_catalog();
    let sites = [SiteId(0), SiteId(1), SiteId(2)];
    let mut host =
        ControlledHost::new(host_cfg, build_cluster(sites, &catalog, T_BOUND, customize));
    host.inject(
        CLIENT,
        SiteId(0),
        NetMsg::BeginTxn {
            txn: TxnId(1),
            writeset: WriteSet::new([(ItemId(0), 7)]),
            protocol,
        },
    );
    host
}

/// The Paxos Commit checker host: [`single_shard_host`] pinned to
/// [`ProtocolKind::PaxosCommit`]. Over the 3-site catalog the 2F+1
/// acceptors are co-located with the participants (F = 1, majority 2),
/// the submitting site doubles as the ballot-0 leader, and leader
/// failover is any participant's watchdog standing up a recovery
/// candidate — so the same host shape that closes the quorum-commit
/// spaces closes this engine's too.
pub fn paxos_host(
    host_cfg: HostConfig,
    customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> ControlledHost<SiteNode> {
    single_shard_host(ProtocolKind::PaxosCommit, host_cfg, customize)
}

/// A 2-shard cross-shard host: shard A = sites {0, 1} replicating item
/// 0 (`w = 2`), shard B = site {2} holding item 1, and one cross-shard
/// transaction (`TxnId(1)`) writing both items, parented at site 0.
/// Site 0 plays both the cross-shard coordinator and shard A's branch
/// coordinator (the home-branch placement the cluster front-ends use);
/// site 2 coordinates shard B's branch.
pub fn two_shard_host(
    protocol: ProtocolKind,
    host_cfg: HostConfig,
    mut customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> ControlledHost<SiteNode> {
    let shard_a = CatalogBuilder::new()
        .item(ItemId(0), "a")
        .copies_at([SiteId(0), SiteId(1)])
        .quorums(1, 2)
        .build()
        .expect("static catalog");
    let shard_b = CatalogBuilder::new()
        .item(ItemId(1), "b")
        .copies_at([SiteId(2)])
        .quorums(1, 1)
        .build()
        .expect("static catalog");
    let parent = SiteId(0);
    let branches = vec![
        Arc::new(
            TxnSpec::from_catalog(
                TxnId(1),
                parent,
                WriteSet::new([(ItemId(0), 7)]),
                protocol,
                &shard_a,
            )
            .with_parent(parent),
        ),
        Arc::new(
            TxnSpec::from_catalog(
                TxnId(1),
                SiteId(2),
                WriteSet::new([(ItemId(1), 9)]),
                protocol,
                &shard_b,
            )
            .with_parent(parent),
        ),
    ];
    let nodes: Vec<(SiteId, SiteNode)> = [SiteId(0), SiteId(1)]
        .into_iter()
        .map(|s| (s, &shard_a))
        .chain([(SiteId(2), &shard_b)])
        .map(|(s, cat)| {
            let cfg = customize(NodeConfig::new(s, cat.clone(), T_BOUND));
            (s, SiteNode::new(cfg, |_| 0))
        })
        .collect();
    let mut host = ControlledHost::new(host_cfg, nodes);
    host.inject(
        CLIENT,
        parent,
        NetMsg::BeginXTxn {
            txn: TxnId(1),
            branches,
        },
    );
    host
}

/// A 3-site cross-shard host where the parent holds *no* branch: site 0
/// is a pure client-parent X coordinator, shard A = site {1} (item 0),
/// shard B = site {2} (item 1). Unlike [`two_shard_host`] — where the
/// parent doubles as a branch coordinator, so "ask a sibling" and "ask
/// the parent" are the same site — here the two are distinct, which is
/// the configuration that exercises cooperative sibling outcome
/// discovery: with site 0 down, site 2's only living source of the
/// outcome is its sibling at site 1.
pub fn client_parent_host(
    protocol: ProtocolKind,
    host_cfg: HostConfig,
    mut customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> ControlledHost<SiteNode> {
    let shard_a = CatalogBuilder::new()
        .item(ItemId(0), "a")
        .copies_at([SiteId(1)])
        .quorums(1, 1)
        .build()
        .expect("static catalog");
    let shard_b = CatalogBuilder::new()
        .item(ItemId(1), "b")
        .copies_at([SiteId(2)])
        .quorums(1, 1)
        .build()
        .expect("static catalog");
    let parent = SiteId(0);
    let branches = vec![
        Arc::new(
            TxnSpec::from_catalog(
                TxnId(1),
                SiteId(1),
                WriteSet::new([(ItemId(0), 7)]),
                protocol,
                &shard_a,
            )
            .with_parent(parent),
        ),
        Arc::new(
            TxnSpec::from_catalog(
                TxnId(1),
                SiteId(2),
                WriteSet::new([(ItemId(1), 9)]),
                protocol,
                &shard_b,
            )
            .with_parent(parent),
        ),
    ];
    let nodes: Vec<(SiteId, SiteNode)> = [(parent, &shard_a), (SiteId(1), &shard_a)]
        .into_iter()
        .chain([(SiteId(2), &shard_b)])
        .map(|(s, cat)| {
            let cfg = customize(NodeConfig::new(s, cat.clone(), T_BOUND));
            (s, SiteNode::new(cfg, |_| 0))
        })
        .collect();
    let mut host = ControlledHost::new(host_cfg, nodes);
    host.inject(
        CLIENT,
        parent,
        NetMsg::BeginXTxn {
            txn: TxnId(1),
            branches,
        },
    );
    host
}

/// Finds the unique in-flight message matching `(from, to)` whose
/// payload debug-rendering contains `needle`, for pinned-schedule
/// tests. Panics with a dump of the wire if nothing matches.
pub fn find_in_flight(h: &ControlledHost<SiteNode>, from: SiteId, to: SiteId, needle: &str) -> u64 {
    let matches: Vec<u64> = h
        .in_flight()
        .iter()
        .filter(|m| m.from == from && m.to == to && format!("{:?}", m.msg).contains(needle))
        .map(|m| m.seq)
        .collect();
    assert!(
        !matches.is_empty(),
        "no in-flight {from} -> {to} message matching {needle:?}; wire: {:?}",
        h.in_flight()
            .iter()
            .map(|m| format!("{} -> {}: {:?}", m.from, m.to, m.msg))
            .collect::<Vec<_>>()
    );
    matches[0]
}

/// Delivers the matching in-flight message (see [`find_in_flight`]).
pub fn deliver(h: &mut ControlledHost<SiteNode>, from: SiteId, to: SiteId, needle: &str) {
    let seq = find_in_flight(h, from, to, needle);
    h.apply(qbc_simnet::Choice::Deliver { seq });
}

/// Drops (loses) the matching in-flight message instead.
pub fn drop_in_flight(h: &mut ControlledHost<SiteNode>, from: SiteId, to: SiteId, needle: &str) {
    let seq = find_in_flight(h, from, to, needle);
    h.apply(qbc_simnet::Choice::Drop { seq });
}

/// Every decision any site holds for `txn` — volatile (live engine or
/// retired record) and durable (WAL `Decided` records, which survive a
/// crash that wipes the volatile tables). `(site, decision, version,
/// provenance)` tuples for error messages.
fn decisions_of(
    h: &ControlledHost<SiteNode>,
    txn: TxnId,
) -> Vec<(SiteId, Decision, Option<Version>, &'static str)> {
    let mut out = Vec::new();
    for s in h.sites() {
        let n = h.node(s);
        if let Some(d) = n.decision(txn) {
            out.push((s, d, n.commit_version_of(txn), "volatile"));
        }
        for r in n.log_records() {
            if let LogRecord::Decided {
                txn: t,
                decision,
                commit_version,
            } = r
            {
                if *t == txn {
                    out.push((s, *decision, *commit_version, "durable"));
                }
            }
        }
    }
    out
}

/// Atomicity over the given transactions: no reachable state may hold
/// both a commit and an abort for the same transaction anywhere in the
/// cluster — across sites, and across the volatile/durable line at one
/// site (a crashed site's pre-crash commit record counts even while its
/// tables are empty). Committers must also agree on the installed
/// version, and no site's own audit log may have flagged a violation.
pub fn atomicity(txns: Vec<TxnId>) -> impl Fn(&ControlledHost<SiteNode>) -> Result<(), String> {
    move |h| {
        for s in h.sites() {
            if let Some(v) = h.node(s).violations().first() {
                return Err(format!("{s} audit violation: {v:?}"));
            }
        }
        for &txn in &txns {
            let ds = decisions_of(h, txn);
            let commit = ds.iter().find(|(_, d, _, _)| *d == Decision::Commit);
            let abort = ds.iter().find(|(_, d, _, _)| *d == Decision::Abort);
            if let (Some(c), Some(a)) = (commit, abort) {
                return Err(format!(
                    "{txn:?} committed at {} ({}) but aborted at {} ({})",
                    c.0, c.3, a.0, a.3
                ));
            }
            let mut versions: Vec<(SiteId, Version)> = ds
                .iter()
                .filter_map(|(s, d, v, _)| {
                    (*d == Decision::Commit)
                        .then(|| v.map(|v| (*s, v)))
                        .flatten()
                })
                .collect();
            versions.dedup_by_key(|(_, v)| *v);
            if versions.len() > 1 {
                return Err(format!(
                    "{txn:?} committed with diverging versions: {versions:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Decision stability: a decided transaction never changes its mind.
/// Checked per site as (a) the durable log never holds two `Decided`
/// (or two `XDecision`) records for one transaction with conflicting
/// outcomes — re-announcements may re-log the *same* outcome — and
/// (b) the volatile decision, when present alongside a durable one,
/// matches it (recovery replays the log, so divergence here means a
/// decided outcome flipped across a crash).
pub fn decision_stability() -> impl Fn(&ControlledHost<SiteNode>) -> Result<(), String> {
    |h| {
        for s in h.sites() {
            let n = h.node(s);
            let mut durable: BTreeMap<TxnId, (Decision, Option<Version>)> = BTreeMap::new();
            let mut x_durable: BTreeMap<TxnId, Decision> = BTreeMap::new();
            for r in n.log_records() {
                match r {
                    LogRecord::Decided {
                        txn,
                        decision,
                        commit_version,
                    } => {
                        if let Some(prev) = durable.insert(*txn, (*decision, *commit_version)) {
                            if prev != (*decision, *commit_version) {
                                return Err(format!(
                                    "{s} logged conflicting decisions for {txn:?}: {prev:?} then {:?}",
                                    (*decision, *commit_version)
                                ));
                            }
                        }
                    }
                    LogRecord::XDecision { txn, decision, .. } => {
                        if let Some(prev) = x_durable.insert(*txn, *decision) {
                            if prev != *decision {
                                return Err(format!(
                                    "{s} logged conflicting X-decisions for {txn:?}: {prev:?} then {decision:?}"
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            for (&txn, &(d, _)) in &durable {
                if let Some(vd) = n.decision(txn) {
                    if vd != d {
                        return Err(format!(
                            "{s} volatile decision {vd:?} contradicts durable {d:?} for {txn:?}"
                        ));
                    }
                }
            }
            for (&txn, &d) in &x_durable {
                if let Some(vd) = n.x_decision(txn) {
                    if vd != d {
                        return Err(format!(
                            "{s} volatile X-decision {vd:?} contradicts durable {d:?} for {txn:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Bounded termination, checked at quiescent states (no delivery or
/// timer enabled — nothing is ever going to happen again): every *live*
/// site still hosting one of the given transactions must have decided
/// it. Sound even under crashes because an undecided engine always
/// keeps a watchdog, election, or retry timer armed — a quiescent
/// undecided site is precisely a lost wakeup, the bug class this
/// invariant exists to catch. Sites that are down (and sites that never
/// learned of the transaction because its messages died with a crash)
/// are exempt: termination cannot be demanded of a corpse.
pub fn quiescent_termination(
    txns: Vec<TxnId>,
) -> impl Fn(&ControlledHost<SiteNode>) -> Result<(), String> {
    move |h| {
        for s in h.sites() {
            if !h.is_up(s) {
                continue;
            }
            let n = h.node(s);
            for &txn in &txns {
                if n.known_txns().contains(&txn) && n.decision(txn).is_none() {
                    return Err(format!(
                        "{s} still hosts undecided {txn:?} at quiescence (blocked: {})",
                        n.is_blocked(txn)
                    ));
                }
            }
        }
        Ok(())
    }
}
