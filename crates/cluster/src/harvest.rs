//! Shared plumbing between the two substrates: node construction and
//! metric/consistency harvesting from a set of [`SiteNode`]s.

use crate::config::ClusterConfig;
use crate::metrics::{AtomicityViolation, ClusterMetrics, ShardMetrics};
use crate::shard::{ShardId, ShardMap};
use crate::sim_cluster::TxnHandle;
use qbc_core::{Decision, ProtocolKind, SiteVotes, TxnId};
use qbc_db::{NodeConfig, SiteNode};
use qbc_obs::Obs;
use qbc_simnet::{SiteId, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builds the cluster's shared observer when the configuration enables
/// it, with every catalog item pre-registered so the blocking tracker
/// knows each item's replication shape and read quorum.
pub(crate) fn make_obs(cfg: &ClusterConfig, map: &ShardMap) -> Option<Arc<Obs>> {
    if !cfg.obs.enabled {
        return None;
    }
    let obs = Arc::new(Obs::new(cfg.obs.clone()));
    if cfg.obs.panic_hook {
        obs.install_panic_hook();
    }
    for shard in 0..cfg.shards {
        for spec in map.catalog(ShardId(shard)).items() {
            let copies: Vec<(SiteId, u32)> = spec.copies.iter().map(|(&s, &w)| (s, w)).collect();
            obs.register_item(spec.id, copies, spec.read_quorum);
        }
    }
    Some(obs)
}

/// The front-end's first fresh transaction id over a set of (possibly
/// reopened) nodes: one past the largest id with any durable trace, so
/// a restarted cluster never re-issues an id its previous incarnation
/// used. Fresh logs yield the usual 1.
pub(crate) fn first_fresh_txn(nodes: &[(SiteId, SiteNode)]) -> u64 {
    nodes
        .iter()
        .filter_map(|(_, n)| n.max_durable_txn())
        .map(|t| t.0 + 1)
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Builds one configured [`SiteNode`] per cluster site (initial item
/// values zero), ready for any substrate. `decision_events` is on for
/// push-style front-ends (the reactor) and off for the polling ones.
pub(crate) fn build_nodes(
    cfg: &ClusterConfig,
    map: &ShardMap,
    obs: Option<&Arc<Obs>>,
    decision_events: bool,
) -> Vec<(SiteId, SiteNode)> {
    let mut nodes = Vec::with_capacity(cfg.total_sites() as usize);
    for shard in 0..cfg.shards {
        let shard = ShardId(shard);
        let sites = map.sites_of(shard);
        for &site in &sites {
            let mut nc = NodeConfig::new(site, map.catalog(shard).clone(), cfg.t_bound);
            nc.group_commit = cfg.group_commit;
            if let Some(w) = cfg.group_commit_window {
                nc.group_commit_window = w;
            }
            nc.group_commit_max_batch = cfg.group_commit_max_batch;
            nc.adaptive_commit_window = cfg.adaptive_commit_window;
            nc.force_latency = cfg.force_latency;
            nc.retire_after = cfg.retire_after;
            nc.retire_horizon = cfg.retire_horizon;
            nc.checkpoint_interval = cfg.checkpoint_interval;
            nc.checkpoint_bytes = cfg.checkpoint_bytes;
            nc.snapshot_reads = cfg.snapshot_reads;
            nc.decision_events = decision_events;
            nc.version_retention = cfg.version_retention;
            if let Some(obs) = obs {
                nc.obs = Some(Arc::clone(obs));
            }
            if let Some(root) = &cfg.wal_dir {
                nc.wal_backend = qbc_db::WalBackendConfig::File {
                    dir: root.join(format!("site-{}", site.0)),
                    segment_bytes: cfg.wal_segment_bytes,
                    fsync: cfg.wal_fsync,
                };
            }
            if cfg.protocol == ProtocolKind::SkeenQuorum {
                let q = cfg.sites_per_shard / 2 + 1;
                nc = nc.with_site_votes(SiteVotes::uniform(sites.iter().copied(), q, q));
            }
            nodes.push((site, SiteNode::new(nc, |_| 0)));
        }
    }
    nodes
}

/// Walks the cluster's nodes and computes per-shard metrics plus the
/// cluster-level atomicity check for every submitted handle. A
/// cross-shard transaction (listed in `xshards`) is audited over the
/// *union* of its shards' sites — commit at any site of one shard plus
/// abort at any site of another is exactly the violation the top-level
/// 2PC must prevent — and counted in its home shard's metrics.
pub(crate) fn harvest(
    map: &ShardMap,
    handles: &[TxnHandle],
    xshards: &BTreeMap<TxnId, Vec<ShardId>>,
    nodes: &BTreeMap<SiteId, &SiteNode>,
    now: Time,
) -> (ClusterMetrics, Vec<AtomicityViolation>) {
    let mut shards: Vec<ShardMetrics> =
        (0..map.shards()).map(|_| ShardMetrics::default()).collect();
    let mut violations = Vec::new();

    for h in handles {
        let shard_set: &[ShardId] = xshards
            .get(&h.txn)
            .map(|v| v.as_slice())
            .unwrap_or(std::slice::from_ref(&h.shard));
        let sites = || shard_set.iter().flat_map(|&s| map.sites_iter(s));
        let m = &mut shards[h.shard.0 as usize];
        m.submitted += 1;
        // Counting pass only: the harvest runs per submitted handle on
        // every metrics sample, so it must not grow per-transaction
        // vectors. Site lists are materialized only for the (never, in
        // correct runs) case of an actual atomicity violation.
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut blocked = false;
        let mut known = false;
        for site in sites() {
            let Some(node) = nodes.get(&site) else {
                continue;
            };
            match node.decision(h.txn) {
                Some(Decision::Commit) => commits += 1,
                Some(Decision::Abort) => aborts += 1,
                None => {}
            }
            known |= node.local_state(h.txn).is_some();
            blocked |= node.is_blocked(h.txn);
        }
        if commits > 0 && aborts > 0 {
            let decided_at = |d: Decision| {
                sites()
                    .filter(|site| {
                        nodes
                            .get(site)
                            .is_some_and(|n| n.decision(h.txn) == Some(d))
                    })
                    .collect()
            };
            violations.push(AtomicityViolation {
                txn: h.txn,
                committed_at: decided_at(Decision::Commit),
                aborted_at: decided_at(Decision::Abort),
            });
        }
        if blocked {
            m.blocked += 1;
        }
        if commits > 0 {
            m.committed += 1;
        } else if aborts > 0 {
            m.aborted += 1;
        } else if known || now <= h.submitted_at {
            m.undecided += 1;
            m.queue_depth += 1;
        } else {
            // Submitted in the past yet unknown everywhere: the
            // coordinator was down at the submission instant and the
            // request was lost. Nothing was ever logged, so the
            // transaction can never commit.
            m.rejected += 1;
        }
        // Client-observed latency: the coordinator's decision time.
        if let Some(node) = nodes.get(&h.coordinator) {
            if let Some(at) = node.decided_at(h.txn) {
                m.latency.record(at.since(h.submitted_at));
            }
        }
    }

    for (i, m) in shards.iter_mut().enumerate() {
        for site in map.sites_iter(ShardId(i as u32)) {
            if let Some(node) = nodes.get(&site) {
                m.wal_forces += node.wal_forces();
                // Cumulative, not retained: checkpoint truncation frees
                // log prefixes, and a shrinking denominator would turn
                // records_per_force into nonsense.
                m.wal_records += node.wal_appended();
                let backlog = node.wal_backlog(now);
                if backlog > m.wal_backlog {
                    m.wal_backlog = backlog;
                }
            }
        }
        m.peak_queue_depth = m.queue_depth;
    }

    (ClusterMetrics { shards }, violations)
}
