//! The cluster front-end on the real-time threaded transport.
//!
//! Same nodes, same placement, same client API shape as
//! [`crate::SimCluster`], but each site runs on its own OS thread and
//! transactions are started through the `NetMsg::BeginTxn` wire request
//! (the threaded substrate has no `schedule_call`). Correctness evidence
//! lives on the deterministic substrate; this one demonstrates substrate
//! independence and provides a wall-clock smoke environment.

use crate::config::ClusterConfig;
use crate::harvest::{build_nodes, first_fresh_txn, harvest, make_obs};
use crate::metrics::{AtomicityViolation, ClusterMetrics};
use crate::shard::{ShardId, ShardMap};
use crate::sim_cluster::TxnHandle;
use qbc_core::{Decision, TxnId, WriteSet};
use qbc_db::{NetMsg, SiteNode};
use qbc_obs::{Obs, Registry};
use qbc_simnet::threaded::{ThreadedConfig, ThreadedNet};
use qbc_simnet::{SiteId, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Final state of a threaded cluster run, computed at shutdown.
#[derive(Debug)]
pub struct ClusterReport {
    /// Outcome of every submitted handle, in submission order.
    pub decisions: Vec<(TxnHandle, Option<Decision>)>,
    /// Per-shard metrics harvested from the final node states.
    /// Latencies are measured from transport start (the threaded
    /// substrate has no per-submission virtual timestamp).
    pub metrics: ClusterMetrics,
    /// Transactions that terminated inconsistently (must be empty).
    pub atomicity_violations: Vec<AtomicityViolation>,
    /// The cluster's observer (when [`ClusterConfig::obs`] enabled
    /// one), carried out of the shutdown so phase histograms, dumps and
    /// the exporter below remain reachable.
    pub obs: Option<Arc<Obs>>,
}

impl ClusterReport {
    /// Renders the full metrics registry in the Prometheus text
    /// exposition format: per-shard counters/histograms plus (when
    /// observability was on) every observer metric. This is the scrape
    /// payload a `/metrics` endpoint would serve.
    pub fn prometheus_text(&self) -> String {
        let mut r = Registry::new();
        self.metrics.fill_registry(&mut r);
        if let Some(obs) = &self.obs {
            // "Now" for still-open windows: the newest event the
            // flight recorder retained (the report is post-shutdown, so
            // nothing further can happen).
            let now = obs.events().last().map(|e| e.at).unwrap_or(Time::ZERO);
            obs.fill_registry(now, &mut r);
        }
        r.prometheus_text()
    }
}

/// A sharded cluster on OS threads.
pub struct ThreadedCluster {
    cfg: ClusterConfig,
    map: ShardMap,
    net: ThreadedNet<SiteNode>,
    client: SiteId,
    next_txn: u64,
    next_read: u64,
    rr_by_shard: Vec<u64>,
    handles: Vec<TxnHandle>,
    /// Shard sets of cross-shard transactions (absent ⇒ single-shard).
    xshards: BTreeMap<TxnId, Vec<ShardId>>,
    obs: Option<Arc<Obs>>,
}

impl ThreadedCluster {
    /// Spawns one thread per site plus the delayer thread.
    /// `delay_ms` is the fixed per-message transit delay.
    pub fn spawn(cfg: ClusterConfig, delay_ms: u64) -> Self {
        let map = ShardMap::new(&cfg);
        let obs = make_obs(&cfg, &map);
        let nodes = build_nodes(&cfg, &map, obs.as_ref(), false);
        // Durable id allocation (computed before the nodes move onto
        // their threads): resume numbering past any reopened logs.
        let next_txn = first_fresh_txn(&nodes);
        let net = ThreadedNet::spawn(
            ThreadedConfig {
                delay_ms,
                seed: cfg.seed,
            },
            nodes,
        );
        let shards = cfg.shards as usize;
        let client = SiteId(cfg.total_sites());
        ThreadedCluster {
            cfg,
            map,
            net,
            client,
            next_txn,
            next_read: 1,
            rr_by_shard: vec![0; shards],
            handles: Vec::new(),
            xshards: BTreeMap::new(),
            obs,
        }
    }

    /// The shared observer, when [`ClusterConfig::obs`] enabled one.
    /// Live while the cluster runs: scrape-style exporters can render
    /// it mid-run without stopping the threads.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Submits a transaction (returns immediately; the cluster threads
    /// run it concurrently). Routing rules match the sim front-end:
    /// round-robin coordinators; a cross-shard writeset is split into
    /// branches and started through the `NetMsg::BeginXTxn` wire
    /// request at its home shard's coordinator.
    pub fn submit(&mut self, writeset: WriteSet) -> TxnHandle {
        let split = self.map.split_writeset(&writeset);
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let protocol = self.cfg.protocol;
        let (home, _) = split[0];
        let coordinator = self.pick_coordinator(home);
        if split.len() == 1 {
            let (_, writeset) = split.into_iter().next().expect("one slice");
            self.net.inject(
                self.client,
                coordinator,
                NetMsg::BeginTxn {
                    txn,
                    writeset,
                    protocol,
                },
            );
        } else {
            let shards: Vec<ShardId> = split.iter().map(|(s, _)| *s).collect();
            let picks: BTreeMap<ShardId, SiteId> = shards
                .iter()
                .filter(|&&s| s != home)
                .map(|&s| (s, self.pick_coordinator(s)))
                .collect();
            let branches = self
                .map
                .xtxn_branches(txn, protocol, coordinator, home, split, |s| picks[&s]);
            self.xshards.insert(txn, shards);
            self.net.inject(
                self.client,
                coordinator,
                NetMsg::BeginXTxn { txn, branches },
            );
        }
        let handle = TxnHandle {
            txn,
            shard: home,
            coordinator,
            submitted_at: Time::ZERO,
        };
        self.handles.push(handle);
        handle
    }

    /// Round-robin coordinator choice within a shard.
    fn pick_coordinator(&mut self, shard: ShardId) -> SiteId {
        let n = self.rr_by_shard[shard.0 as usize];
        self.rr_by_shard[shard.0 as usize] += 1;
        self.map.coordinator(shard, n)
    }

    /// Fires a snapshot read at a round-robin coordinator (returns
    /// immediately; the threaded transport drops the reply to this
    /// pseudo-client, so outcomes are observed through the obs
    /// counters: `qbc_snapshot_reads_total` and
    /// `qbc_snapshot_read_unavailable_total`). Requires
    /// [`ClusterConfig::snapshot_reads`].
    pub fn snapshot_read(&mut self, item: qbc_votes::ItemId) -> u64 {
        assert!(
            self.cfg.snapshot_reads,
            "snapshot reads are off; enable ClusterConfig::snapshot_reads"
        );
        let shard = self
            .map
            .shard_of_item(item)
            .unwrap_or_else(|| panic!("{item:?} outside the cluster's item space"));
        let coordinator = self.pick_coordinator(shard);
        let req_id = self.next_read;
        self.next_read += 1;
        self.net.inject(
            self.client,
            coordinator,
            NetMsg::BeginSnapRead { req_id, item },
        );
        req_id
    }

    /// Applies a partition to the live network.
    pub fn partition(&self, components: &[Vec<SiteId>]) {
        self.net.partition(components);
    }

    /// Heals all partitions.
    pub fn heal(&self) {
        self.net.heal();
    }

    /// Stops every thread and harvests decisions, metrics and the
    /// atomicity check from the final node states.
    pub fn shutdown(self) -> ClusterReport {
        let nodes = self.net.shutdown();
        let by_site: BTreeMap<SiteId, &SiteNode> = nodes.iter().map(|(s, n)| (*s, n)).collect();
        // `Time(u64::MAX)` ⇒ device backlogs read as drained (wall time
        // has no meaningful "now" after shutdown).
        let (metrics, atomicity_violations) = harvest(
            &self.map,
            &self.handles,
            &self.xshards,
            &by_site,
            Time(u64::MAX),
        );
        let decisions = self
            .handles
            .iter()
            .map(|h| {
                let shards = self
                    .xshards
                    .get(&h.txn)
                    .cloned()
                    .unwrap_or_else(|| vec![h.shard]);
                let d = shards
                    .iter()
                    .flat_map(|&s| self.map.sites_of(s))
                    .find_map(|s| by_site.get(&s).and_then(|n| n.decision(h.txn)));
                (*h, d)
            })
            .collect();
        if let (Some(obs), Some(v)) = (&self.obs, atomicity_violations.first()) {
            let _ = obs.dump(&format!("atomicity violation: txn {}", v.txn.0));
        }
        ClusterReport {
            decisions,
            metrics,
            atomicity_violations,
            obs: self.obs,
        }
    }
}
