//! The cluster front-end on the deterministic simulator.

use crate::config::ClusterConfig;
use crate::harvest::{build_nodes, first_fresh_txn, harvest, make_obs};
use crate::metrics::{AtomicityViolation, ClusterMetrics};
use crate::shard::{ShardId, ShardMap};
use qbc_core::{Decision, TxnId, WriteSet};
use qbc_db::{ReadResult, SiteNode, Violation};
use qbc_obs::{Obs, Registry};
use qbc_simnet::{DelayModel, Duration, Quiescence, Sim, SimConfig, SiteId, Time};
use qbc_votes::{ItemId, Version};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Client-observable state of a submitted transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Some participant decided commit.
    Committed,
    /// Some participant decided abort (and none committed).
    Aborted,
    /// In flight: at least one site is running the protocol for it.
    Pending,
    /// The submission never reached a live coordinator (the site was
    /// down at the submission instant): no live site knows the
    /// transaction and its coordinator is up — the cluster-level
    /// equivalent of a client connection error. While the coordinator
    /// is *down* the handle reads as [`TxnStatus::Pending`] instead,
    /// because a recovering coordinator can revive a transaction from
    /// its WAL. (A spec-carrying message still in flight at the poll
    /// instant can, in rare crash/recovery interleavings, still revive
    /// a `Rejected` transaction — treat it as best-effort terminal.)
    Rejected,
}

impl TxnStatus {
    /// True when the handle has reached a terminal state (committed,
    /// aborted or rejected). Commit/abort never change again; see
    /// [`TxnStatus::Rejected`] for its (narrow) revival caveat.
    pub fn is_resolved(self) -> bool {
        !matches!(self, TxnStatus::Pending)
    }
}

/// A submitted transaction: everything a client needs to resolve its
/// outcome later. Cheap to copy; does not borrow the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnHandle {
    /// Cluster-unique transaction id.
    pub txn: TxnId,
    /// Shard the transaction runs on — for a cross-shard transaction,
    /// its *home* shard (the shard of its lowest item, which hosts the
    /// cross-shard coordinator); the full shard set is tracked by the
    /// cluster front-end.
    pub shard: ShardId,
    /// Site chosen (round-robin) to coordinate it. For a cross-shard
    /// transaction this is the cross-shard coordinator's site.
    pub coordinator: SiteId,
    /// Virtual time of submission.
    pub submitted_at: Time,
}

/// A started quorum read, resolvable via [`SimCluster::read_result`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadHandle {
    /// Node-local request id at the coordinating site.
    pub req_id: u64,
    /// Site collecting the read quorum.
    pub coordinator: SiteId,
    /// Item read.
    pub item: ItemId,
    /// Virtual time of submission.
    pub submitted_at: Time,
}

/// One client's view of the cluster: remembers the handles it issued so
/// the whole session can be awaited at once. Sessions are cheap and any
/// number can be open; their transactions run concurrently.
#[derive(Debug)]
pub struct Session {
    /// Session id (diagnostic only).
    pub id: u32,
    handles: Vec<TxnHandle>,
    /// Newest snapshot-read answer per item: successive reads through
    /// one session never go backwards, even when round-robin routing
    /// lands them on coordinators with lagging watermarks.
    snap_cache: BTreeMap<ItemId, (Version, i64)>,
}

impl Session {
    /// Handles submitted through this session, in submission order.
    pub fn handles(&self) -> &[TxnHandle] {
        &self.handles
    }

    /// Applies the session-monotonicity clamp: a successful answer
    /// older than one this session already observed for the same item
    /// is replaced by the cached newer (version, value).
    fn observe_snapshot(&mut self, item: ItemId, r: ReadResult) -> ReadResult {
        match r {
            ReadResult::Success { version, value } => match self.snap_cache.get(&item) {
                Some(&(cv, cval)) if cv > version => ReadResult::Success {
                    version: cv,
                    value: cval,
                },
                _ => {
                    self.snap_cache.insert(item, (version, value));
                    r
                }
            },
            other => other,
        }
    }
}

/// A sharded cluster running on the deterministic simulator: site nodes
/// for every shard on one [`Sim`], fronted by a submit/read/await client
/// API. Determinism is inherited — a run is a pure function of the
/// configuration and the submission schedule.
pub struct SimCluster {
    cfg: ClusterConfig,
    map: ShardMap,
    sim: Sim<SiteNode>,
    next_txn: u64,
    next_read: u64,
    next_session: u32,
    rr_by_shard: Vec<u64>,
    handles: Vec<TxnHandle>,
    /// Shard sets of cross-shard transactions (absent ⇒ single-shard).
    xshards: BTreeMap<TxnId, Vec<ShardId>>,
    peak_queue: Vec<u64>,
    obs: Option<Arc<Obs>>,
}

impl SimCluster {
    /// Builds and deploys the cluster (all sites up, fully connected).
    pub fn new(cfg: ClusterConfig) -> Self {
        let map = ShardMap::new(&cfg);
        let obs = make_obs(&cfg, &map);
        let nodes = build_nodes(&cfg, &map, obs.as_ref(), false);
        // Durable id allocation: a cluster reopening file-backed logs
        // resumes numbering past its previous incarnation's ids.
        let next_txn = first_fresh_txn(&nodes);
        let sim = Sim::new(
            SimConfig {
                seed: cfg.seed,
                delay: DelayModel::uniform(Duration(1), cfg.t_bound),
                record_trace: false,
            },
            nodes,
        );
        let shards = cfg.shards as usize;
        SimCluster {
            cfg,
            map,
            sim,
            next_txn,
            next_read: 1,
            next_session: 0,
            rr_by_shard: vec![0; shards],
            handles: Vec::new(),
            xshards: BTreeMap::new(),
            peak_queue: vec![0; shards],
            obs,
        }
    }

    /// The placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Opens a new client session.
    pub fn open_session(&mut self) -> Session {
        let id = self.next_session;
        self.next_session += 1;
        Session {
            id,
            handles: Vec::new(),
            snap_cache: BTreeMap::new(),
        }
    }

    /// Submits a transaction at virtual time `at` (no waiting). A
    /// single-shard writeset runs the paper's protocol inside its shard,
    /// coordinated by a round-robin-chosen site. A writeset spanning
    /// shards is split into per-shard branches and driven by a
    /// cross-shard (top-level 2PC) coordinator at its *home* shard —
    /// the shard of its lowest item — with each branch holding at its
    /// in-shard commit point until the cross-shard decision. Panics on
    /// an empty writeset or items outside the cluster's space.
    pub fn submit_at(&mut self, at: Time, writeset: WriteSet) -> TxnHandle {
        let split = self.map.split_writeset(&writeset);
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let protocol = self.cfg.protocol;
        let (home, _) = split[0];
        let coordinator = self.pick_coordinator(home);
        if split.len() == 1 {
            let (_, writeset) = split.into_iter().next().expect("one slice");
            self.sim.schedule_call(at, coordinator, move |node, ctx| {
                node.begin_transaction(ctx, txn, writeset, protocol);
            });
        } else {
            let shards: Vec<ShardId> = split.iter().map(|(s, _)| *s).collect();
            // Rotate the remote branch coordinators up front (the
            // round-robin counters live next to the map).
            let picks: BTreeMap<ShardId, SiteId> = shards
                .iter()
                .filter(|&&s| s != home)
                .map(|&s| (s, self.pick_coordinator(s)))
                .collect();
            let branches = self
                .map
                .xtxn_branches(txn, protocol, coordinator, home, split, |s| picks[&s]);
            self.xshards.insert(txn, shards);
            self.sim.schedule_call(at, coordinator, move |node, ctx| {
                node.begin_xshard(ctx, txn, branches);
            });
        }
        let handle = TxnHandle {
            txn,
            shard: home,
            coordinator,
            submitted_at: at,
        };
        self.handles.push(handle);
        handle
    }

    /// Round-robin coordinator choice within a shard.
    fn pick_coordinator(&mut self, shard: ShardId) -> SiteId {
        let n = self.rr_by_shard[shard.0 as usize];
        self.rr_by_shard[shard.0 as usize] += 1;
        self.map.coordinator(shard, n)
    }

    /// The shard set of a handle: the involved shards of a cross-shard
    /// transaction, or the handle's single shard.
    pub fn shards_of(&self, h: &TxnHandle) -> Vec<ShardId> {
        self.xshards
            .get(&h.txn)
            .cloned()
            .unwrap_or_else(|| vec![h.shard])
    }

    /// [`SimCluster::submit_at`], recorded in `session`.
    pub fn submit(&mut self, session: &mut Session, at: Time, writeset: WriteSet) -> TxnHandle {
        let h = self.submit_at(at, writeset);
        session.handles.push(h);
        h
    }

    /// Starts a quorum read of `item` at virtual time `at`, coordinated
    /// round-robin like a transaction.
    pub fn read_at(&mut self, at: Time, item: ItemId) -> ReadHandle {
        let shard = self
            .map
            .shard_of_item(item)
            .unwrap_or_else(|| panic!("{item:?} outside the cluster's item space"));
        let coordinator = self.pick_coordinator(shard);
        let req_id = self.next_read;
        self.next_read += 1;
        self.sim.schedule_call(at, coordinator, move |node, ctx| {
            node.start_read(ctx, req_id, item);
        });
        ReadHandle {
            req_id,
            coordinator,
            item,
            submitted_at: at,
        }
    }

    /// Starts a snapshot read of `item` at virtual time `at`,
    /// coordinated round-robin like a transaction. Requires
    /// [`ClusterConfig::snapshot_reads`]; answered from the
    /// multi-version store at the shard watermark, so pinned copies
    /// never make it unavailable.
    pub fn snapshot_read_at(&mut self, at: Time, item: ItemId) -> ReadHandle {
        assert!(
            self.cfg.snapshot_reads,
            "snapshot reads are off; enable ClusterConfig::snapshot_reads"
        );
        let shard = self
            .map
            .shard_of_item(item)
            .unwrap_or_else(|| panic!("{item:?} outside the cluster's item space"));
        let coordinator = self.pick_coordinator(shard);
        let req_id = self.next_read;
        self.next_read += 1;
        self.sim.schedule_call(at, coordinator, move |node, ctx| {
            node.start_snapshot_read(ctx, req_id, item);
        });
        ReadHandle {
            req_id,
            coordinator,
            item,
            submitted_at: at,
        }
    }

    /// The outcome of a snapshot read, while its collector is alive
    /// (collectors retire a few windows after resolving).
    pub fn snap_read_result(&self, h: &ReadHandle) -> Option<ReadResult> {
        self.sim.node(h.coordinator).snap_read_result(h.req_id)
    }

    /// Blocking snapshot read through a session: starts the read now,
    /// drives the simulation until it resolves (bounded by enough
    /// collection windows to try every copy site), and applies the
    /// session-monotonicity clamp — successive reads of one item
    /// through one session never go backwards.
    pub fn snapshot_read(&mut self, session: &mut Session, item: ItemId) -> ReadResult {
        let h = self.snapshot_read_at(self.now(), item);
        // Worst case: one collection window per copy site, plus slack.
        let budget = self
            .cfg
            .t_bound
            .0
            .saturating_mul(8)
            .saturating_mul(self.cfg.replication as u64 + 2);
        let deadline = Time(self.now().0.saturating_add(budget.max(1)));
        let result = loop {
            match self.snap_read_result(&h) {
                Some(r) if r != ReadResult::Pending => break r,
                _ => {}
            }
            if self.sim.now() >= deadline || !self.sim.step() {
                break match self.snap_read_result(&h) {
                    Some(r) if r != ReadResult::Pending => r,
                    _ => ReadResult::Unavailable,
                };
            }
        };
        session.observe_snapshot(item, result)
    }

    /// Runs the cluster until virtual time `t`.
    pub fn run_until(&mut self, t: Time) {
        self.sim.run_until(t);
    }

    /// Runs until the event queue drains or `max_events` are processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> Quiescence {
        self.sim.run_to_quiescence(max_events)
    }

    /// The decision for a handle, if any site of its shard set has one.
    pub fn decision(&self, h: &TxnHandle) -> Option<Decision> {
        if let Some(d) = self.sim.node(h.coordinator).decision(h.txn) {
            return Some(d);
        }
        self.handle_sites(h)
            .find_map(|s| self.sim.node(s).decision(h.txn))
    }

    /// Every site hosting any part of a handle's transaction (all sites
    /// of every involved shard).
    fn handle_sites<'a>(&'a self, h: &'a TxnHandle) -> impl Iterator<Item = SiteId> + 'a {
        let shards = self
            .xshards
            .get(&h.txn)
            .map(|v| v.as_slice())
            .unwrap_or(std::slice::from_ref(&h.shard));
        shards.iter().flat_map(|&s| self.map.sites_iter(s))
    }

    /// Client-observable status of a handle (see [`TxnStatus`]).
    pub fn status(&self, h: &TxnHandle) -> TxnStatus {
        match self.decision(h) {
            Some(Decision::Commit) => TxnStatus::Committed,
            Some(Decision::Abort) => TxnStatus::Aborted,
            None => {
                let known = self
                    .handle_sites(h)
                    .any(|s| self.sim.node(s).local_state(h.txn).is_some());
                // A down coordinator may hold the transaction durably in
                // its WAL and revive it on recovery: stay Pending until
                // it is back up and still knows nothing.
                let coordinator_down = self.sim.topology().is_down(h.coordinator);
                if known || coordinator_down || self.sim.now() <= h.submitted_at {
                    TxnStatus::Pending
                } else {
                    TxnStatus::Rejected
                }
            }
        }
    }

    /// The outcome of a read, if its collection has concluded.
    pub fn read_result(&self, h: &ReadHandle) -> Option<ReadResult> {
        self.sim.node(h.coordinator).read_result(h.req_id)
    }

    /// Drives the simulation until the handle resolves, the event queue
    /// drains, or virtual time reaches `deadline`; returns the decision
    /// if one was reached.
    pub fn await_decision(&mut self, h: &TxnHandle, deadline: Time) -> Option<Decision> {
        loop {
            if let Some(d) = self.decision(h) {
                return Some(d);
            }
            if self.sim.now() >= deadline || !self.sim.step() {
                return self.decision(h);
            }
        }
    }

    /// Awaits every transaction of a session (same bounds as
    /// [`SimCluster::await_decision`]); returns each handle's outcome.
    pub fn await_all(
        &mut self,
        session: &Session,
        deadline: Time,
    ) -> Vec<(TxnHandle, Option<Decision>)> {
        session
            .handles
            .iter()
            .map(|h| (*h, self.await_decision(h, deadline)))
            .collect()
    }

    /// Harvests the live metrics registry *and* the cluster-level
    /// atomicity check in one pass over the nodes (both views are from
    /// the same instant). Callable mid-run; peak queue depths
    /// accumulate across harvests.
    pub fn metrics_and_violations(&mut self) -> (ClusterMetrics, Vec<AtomicityViolation>) {
        let nodes: BTreeMap<SiteId, &SiteNode> = self.sim.nodes().collect();
        let (mut metrics, violations) = harvest(
            &self.map,
            &self.handles,
            &self.xshards,
            &nodes,
            self.sim.now(),
        );
        for (i, m) in metrics.shards.iter_mut().enumerate() {
            self.peak_queue[i] = self.peak_queue[i].max(m.queue_depth);
            m.peak_queue_depth = self.peak_queue[i];
        }
        if let (Some(obs), Some(v)) = (&self.obs, violations.first()) {
            // The one outcome the protocols must never allow: freeze
            // the flight recorder's view of how it happened.
            let _ = obs.dump(&format!("atomicity violation: txn {}", v.txn.0));
        }
        (metrics, violations)
    }

    /// The shared observer, when [`ClusterConfig::obs`] enabled one.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Deterministic JSON snapshot of the full metrics registry:
    /// per-shard counters/histograms plus (when observability is on)
    /// every observer metric. Key order is insertion order, and every
    /// value derives from virtual time, so two runs of the same
    /// schedule serialize byte-identically.
    pub fn metrics_json(&mut self) -> String {
        let now = self.sim.now();
        let metrics = self.metrics();
        let mut r = Registry::new();
        metrics.fill_registry(&mut r);
        if let Some(obs) = &self.obs {
            obs.fill_registry(now, &mut r);
        }
        r.json()
    }

    /// Harvests the live metrics registry: counters and histograms over
    /// everything submitted so far (see
    /// [`SimCluster::metrics_and_violations`] when the atomicity check
    /// is also needed).
    pub fn metrics(&mut self) -> ClusterMetrics {
        self.metrics_and_violations().0
    }

    /// Transactions that terminated inconsistently (must be empty).
    pub fn atomicity_violations(&self) -> Vec<AtomicityViolation> {
        let nodes: BTreeMap<SiteId, &SiteNode> = self.sim.nodes().collect();
        harvest(
            &self.map,
            &self.handles,
            &self.xshards,
            &nodes,
            self.sim.now(),
        )
        .1
    }

    /// Diagnostic violations recorded by any engine (must be empty).
    pub fn engine_violations(&self) -> Vec<(SiteId, Violation)> {
        self.sim
            .nodes()
            .flat_map(|(s, n)| n.violations().iter().cloned().map(move |v| (s, v)))
            .collect()
    }

    /// Every handle submitted so far, in submission order.
    pub fn handles(&self) -> &[TxnHandle] {
        &self.handles
    }

    /// Read access to the underlying simulator (failure injection,
    /// node inspection).
    pub fn sim(&self) -> &Sim<SiteNode> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (schedule crashes,
    /// partitions, recoveries around the client workload).
    pub fn sim_mut(&mut self) -> &mut Sim<SiteNode> {
        &mut self.sim
    }
}
