//! Live cluster metrics: counters, latency histograms, consistency
//! verdicts.

use crate::shard::ShardId;
use qbc_core::TxnId;
use qbc_obs::Registry;
use qbc_simnet::{Duration, SiteId};
use std::fmt;

// The histogram moved to `qbc-obs` (where every metrics consumer can
// reach it without depending on the cluster runtime); re-exported here
// so existing `qbc_cluster::LatencyHistogram` users are unaffected.
pub use qbc_obs::LatencyHistogram;

/// Counters and distributions for one shard.
#[derive(Clone, Debug, Default)]
pub struct ShardMetrics {
    /// Transactions submitted to this shard.
    pub submitted: u64,
    /// Transactions committed (some participant decided commit).
    pub committed: u64,
    /// Transactions aborted everywhere they decided.
    pub aborted: u64,
    /// Transactions with no decision yet anywhere.
    pub undecided: u64,
    /// Transactions whose submission never reached a live coordinator
    /// (the site was down at the submission instant): no live site
    /// knows them at harvest time — the cluster-level equivalent of a
    /// client connection error. Observational: a harvest taken while
    /// the coordinator is down (or a spec-carrying message is in
    /// flight) can count here a transaction that recovery later
    /// revives; re-harvest after the cluster settles for final counts.
    pub rejected: u64,
    /// Transactions currently declared blocked at some site.
    pub blocked: u64,
    /// Client-observed decision latency of decided transactions.
    pub latency: LatencyHistogram,
    /// WAL forces paid across the shard's sites.
    pub wal_forces: u64,
    /// Durable WAL records across the shard's sites.
    pub wal_records: u64,
    /// In-flight (undecided) transactions at harvest time.
    pub queue_depth: u64,
    /// Largest queue depth seen across harvests of one registry. Only
    /// [`crate::SimCluster::metrics`] harvests repeatedly and tracks a
    /// running maximum; a single-harvest registry (the threaded
    /// shutdown report) carries its final `queue_depth` here.
    pub peak_queue_depth: u64,
    /// Largest log-device backlog across the shard's sites at harvest.
    pub wal_backlog: Duration,
}

impl ShardMetrics {
    /// Durable WAL records per force: the group-commit batching factor
    /// (1.0 means every record paid its own force).
    pub fn records_per_force(&self) -> f64 {
        if self.wal_forces == 0 {
            0.0
        } else {
            self.wal_records as f64 / self.wal_forces as f64
        }
    }
}

/// A transaction that terminated inconsistently: the one outcome the
/// protocols must never allow (the paper's Theorem 1 at cluster scope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicityViolation {
    /// The transaction.
    pub txn: TxnId,
    /// Sites that decided commit.
    pub committed_at: Vec<SiteId>,
    /// Sites that decided abort.
    pub aborted_at: Vec<SiteId>,
}

/// Cluster-wide registry: one [`ShardMetrics`] per shard.
#[derive(Clone, Debug, Default)]
pub struct ClusterMetrics {
    /// Indexed by shard id.
    pub shards: Vec<ShardMetrics>,
}

impl ClusterMetrics {
    /// Metrics of one shard.
    pub fn shard(&self, s: ShardId) -> &ShardMetrics {
        &self.shards[s.0 as usize]
    }

    /// Sum of committed transactions across shards.
    pub fn total_committed(&self) -> u64 {
        self.shards.iter().map(|s| s.committed).sum()
    }

    /// Sum of aborted transactions across shards.
    pub fn total_aborted(&self) -> u64 {
        self.shards.iter().map(|s| s.aborted).sum()
    }

    /// Sum of undecided transactions across shards.
    pub fn total_undecided(&self) -> u64 {
        self.shards.iter().map(|s| s.undecided).sum()
    }

    /// Sum of WAL forces across shards.
    pub fn total_wal_forces(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_forces).sum()
    }

    /// Mean decision latency over all decided transactions.
    pub fn mean_latency(&self) -> f64 {
        let count: u64 = self.shards.iter().map(|s| s.latency.count()).sum();
        if count == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .shards
            .iter()
            .map(|s| s.latency.mean() * s.latency.count() as f64)
            .sum();
        weighted / count as f64
    }

    /// Latency distribution merged over every shard (client-observed
    /// decision latency, for cluster-level quantiles).
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for s in &self.shards {
            all.merge(&s.latency);
        }
        all
    }

    /// Appends every per-shard metric to `r`, labeled `shard="<k>"`.
    /// Combined with [`qbc_obs::Obs::fill_registry`] this is the full
    /// exporter surface: the Prometheus text endpoint of the threaded
    /// cluster and the JSON snapshot of the simulated one both render
    /// the registry this fills.
    pub fn fill_registry(&self, r: &mut Registry) {
        for (i, s) in self.shards.iter().enumerate() {
            let l = &[("shard", i.to_string())];
            r.counter(
                "qbc_shard_submitted_total",
                l,
                "transactions submitted to the shard",
                s.submitted,
            );
            r.counter(
                "qbc_shard_committed_total",
                l,
                "transactions committed",
                s.committed,
            );
            r.counter(
                "qbc_shard_aborted_total",
                l,
                "transactions aborted",
                s.aborted,
            );
            r.counter(
                "qbc_shard_rejected_total",
                l,
                "submissions lost to a down coordinator",
                s.rejected,
            );
            r.gauge(
                "qbc_shard_undecided",
                l,
                "transactions with no decision anywhere (at harvest)",
                s.undecided as f64,
            );
            r.gauge(
                "qbc_shard_blocked",
                l,
                "transactions currently declared blocked",
                s.blocked as f64,
            );
            r.counter(
                "qbc_shard_wal_forces_total",
                l,
                "WAL forces paid across the shard's sites",
                s.wal_forces,
            );
            r.counter(
                "qbc_shard_wal_records_total",
                l,
                "records ever made durable across the shard's sites",
                s.wal_records,
            );
            r.gauge(
                "qbc_shard_queue_depth",
                l,
                "in-flight transactions at harvest",
                s.queue_depth as f64,
            );
            r.gauge(
                "qbc_shard_peak_queue_depth",
                l,
                "largest queue depth seen across harvests",
                s.peak_queue_depth as f64,
            );
            r.gauge(
                "qbc_shard_wal_backlog_ticks",
                l,
                "largest log-device backlog across sites at harvest",
                s.wal_backlog.0 as f64,
            );
            r.histogram(
                "qbc_shard_latency_ticks",
                l,
                "client-observed decision latency",
                &s.latency,
            );
        }
    }
}

impl fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>9} {:>9} {:>8} {:>9} {:>8} {:>10} {:>9} {:>7} {:>9}",
            "shard",
            "submitted",
            "committed",
            "aborted",
            "undecided",
            "blocked",
            "lat(mean)",
            "lat(p95)",
            "forces",
            "rec/force"
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "{:<8} {:>9} {:>9} {:>8} {:>9} {:>8} {:>10.1} {:>9} {:>7} {:>9.1}",
                format!("shard{i}"),
                s.submitted,
                s.committed,
                s.aborted,
                s.undecided,
                s.blocked,
                s.latency.mean(),
                s.latency.quantile(0.95).0,
                s.wal_forces,
                s.records_per_force(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::new();
        for d in [1, 2, 3, 4, 100] {
            h.record(Duration(d));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 22.0);
        assert_eq!(h.max(), Duration(100));
        assert!(h.quantile(0.5).0 <= 8);
        assert!(h.quantile(1.0).0 >= 100);
    }

    #[test]
    fn zero_duration_is_recorded() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn records_per_force_reflects_batching() {
        let m = ShardMetrics {
            wal_forces: 10,
            wal_records: 80,
            ..Default::default()
        };
        assert_eq!(m.records_per_force(), 8.0);
    }
}
