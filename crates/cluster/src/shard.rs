//! Item-space partitioning and replica placement.

use crate::config::ClusterConfig;
use qbc_core::{ProtocolKind, TxnId, TxnSpec, WriteSet};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, CatalogBuilder, ItemId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of one shard (replica group).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Static placement: which shard owns an item, which sites form a
/// shard, and the per-shard replication catalog.
///
/// Both id spaces are contiguous per shard, so routing is arithmetic —
/// no lookup table sits on the submit path.
#[derive(Clone, Debug)]
pub struct ShardMap {
    shards: u32,
    sites_per_shard: u32,
    items_per_shard: u32,
    catalogs: Vec<Catalog>,
}

impl ShardMap {
    /// Builds the placement for a configuration (panics on an invalid
    /// one; see [`ClusterConfig::validate`]).
    pub fn new(cfg: &ClusterConfig) -> Self {
        cfg.validate();
        let mut catalogs = Vec::with_capacity(cfg.shards as usize);
        for shard in 0..cfg.shards {
            let mut b = CatalogBuilder::new();
            for k in 0..cfg.items_per_shard {
                let item = ItemId(shard * cfg.items_per_shard + k);
                b = b.item(item, format!("x{}", item.0));
                for j in 0..cfg.replication {
                    let site = SiteId(shard * cfg.sites_per_shard + (k + j) % cfg.sites_per_shard);
                    b = b.copy(site, 1);
                }
                b = b.quorums(cfg.read_quorum, cfg.write_quorum);
            }
            catalogs.push(b.build().expect("validated cluster config"));
        }
        ShardMap {
            shards: cfg.shards,
            sites_per_shard: cfg.sites_per_shard,
            items_per_shard: cfg.items_per_shard,
            catalogs,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `item`, or `None` for an id outside the space.
    pub fn shard_of_item(&self, item: ItemId) -> Option<ShardId> {
        let s = item.0 / self.items_per_shard;
        (s < self.shards).then_some(ShardId(s))
    }

    /// The shard a site belongs to, or `None` for a foreign site id.
    pub fn shard_of_site(&self, site: SiteId) -> Option<ShardId> {
        let s = site.0 / self.sites_per_shard;
        (s < self.shards).then_some(ShardId(s))
    }

    /// The sites of one shard, in id order.
    pub fn sites_of(&self, shard: ShardId) -> Vec<SiteId> {
        self.sites_iter(shard).collect()
    }

    /// The sites of one shard as an iterator (no allocation; placement
    /// is arithmetic). The per-transaction paths — status polls and
    /// metric harvests — use this instead of [`ShardMap::sites_of`].
    pub fn sites_iter(&self, shard: ShardId) -> impl Iterator<Item = SiteId> {
        let base = shard.0 * self.sites_per_shard;
        (base..base + self.sites_per_shard).map(SiteId)
    }

    /// The `n`-th coordinator choice of a shard (round-robin placement).
    pub fn coordinator(&self, shard: ShardId, n: u64) -> SiteId {
        SiteId(shard.0 * self.sites_per_shard + (n % self.sites_per_shard as u64) as u32)
    }

    /// Every site in the cluster.
    pub fn all_sites(&self) -> Vec<SiteId> {
        (0..self.shards * self.sites_per_shard)
            .map(SiteId)
            .collect()
    }

    /// The replication catalog of one shard.
    pub fn catalog(&self, shard: ShardId) -> &Catalog {
        &self.catalogs[shard.0 as usize]
    }

    /// The items of one shard, in id order.
    pub fn items_of(&self, shard: ShardId) -> Vec<ItemId> {
        let base = shard.0 * self.items_per_shard;
        (base..base + self.items_per_shard).map(ItemId).collect()
    }

    /// Splits a writeset into its per-shard slices, in shard order: the
    /// branch writesets of a cross-shard transaction (one entry means
    /// the writeset is single-shard). Panics on an empty writeset or an
    /// item outside the cluster's item space. Shared by both cluster
    /// front-ends so the two substrates can never route the same
    /// writeset differently.
    pub fn split_writeset(&self, writeset: &WriteSet) -> Vec<(ShardId, WriteSet)> {
        assert!(
            !writeset.is_empty(),
            "cannot submit a transaction with an empty writeset"
        );
        let mut by_shard: BTreeMap<ShardId, WriteSet> = BTreeMap::new();
        for (&item, &value) in writeset.updates.iter() {
            let shard = self
                .shard_of_item(item)
                .unwrap_or_else(|| panic!("{item:?} outside the cluster's item space"));
            by_shard
                .entry(shard)
                .or_default()
                .updates
                .insert(item, value);
        }
        by_shard.into_iter().collect()
    }

    /// Builds the branch specs of a cross-shard transaction from its
    /// writeset split ([`ShardMap::split_writeset`]): one spec per
    /// shard, every one carrying `parent` (the cross-shard
    /// coordinator's site). The home branch is coordinated by `parent`
    /// itself (one hop saved); the others by `pick_coordinator`.
    /// Shared by both cluster front-ends so the two substrates can
    /// never plan the same cross-shard transaction differently.
    pub fn xtxn_branches(
        &self,
        txn: TxnId,
        protocol: ProtocolKind,
        parent: SiteId,
        home: ShardId,
        split: Vec<(ShardId, WriteSet)>,
        mut pick_coordinator: impl FnMut(ShardId) -> SiteId,
    ) -> Vec<Arc<TxnSpec>> {
        split
            .into_iter()
            .map(|(shard, ws)| {
                let branch_coord = if shard == home {
                    parent
                } else {
                    pick_coordinator(shard)
                };
                Arc::new(
                    TxnSpec::from_catalog(txn, branch_coord, ws, protocol, self.catalog(shard))
                        .with_parent(parent),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ShardMap {
        ShardMap::new(&ClusterConfig::default())
    }

    #[test]
    fn items_and_sites_route_to_their_shard() {
        let m = map();
        assert_eq!(m.shard_of_item(ItemId(0)), Some(ShardId(0)));
        assert_eq!(m.shard_of_item(ItemId(7)), Some(ShardId(0)));
        assert_eq!(m.shard_of_item(ItemId(8)), Some(ShardId(1)));
        assert_eq!(m.shard_of_item(ItemId(99)), None);
        assert_eq!(m.shard_of_site(SiteId(2)), Some(ShardId(0)));
        assert_eq!(m.shard_of_site(SiteId(3)), Some(ShardId(1)));
        assert_eq!(m.shard_of_site(SiteId(6)), None);
    }

    #[test]
    fn coordinators_rotate_round_robin_within_the_shard() {
        let m = map();
        let picks: Vec<SiteId> = (0..4).map(|n| m.coordinator(ShardId(1), n)).collect();
        assert_eq!(
            picks,
            vec![SiteId(3), SiteId(4), SiteId(5), SiteId(3)],
            "round robin over shard 1's sites"
        );
    }

    #[test]
    fn split_writeset_slices_by_shard_in_order() {
        let m = map();
        let ws = WriteSet::new([(ItemId(9), 1), (ItemId(0), 2), (ItemId(7), 3)]);
        let split = m.split_writeset(&ws);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].0, ShardId(0));
        assert_eq!(split[0].1, WriteSet::new([(ItemId(0), 2), (ItemId(7), 3)]));
        assert_eq!(split[1].0, ShardId(1));
        assert_eq!(split[1].1, WriteSet::new([(ItemId(9), 1)]));
        // Single-shard writesets come back whole.
        let single = m.split_writeset(&WriteSet::new([(ItemId(1), 4)]));
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].0, ShardId(0));
    }

    #[test]
    fn catalogs_place_copies_only_on_shard_sites() {
        let m = map();
        for shard in [ShardId(0), ShardId(1)] {
            let sites = m.sites_of(shard);
            let cat = m.catalog(shard);
            for item in m.items_of(shard) {
                let spec = cat.item(item).expect("item in shard catalog");
                for s in spec.sites() {
                    assert!(sites.contains(&s), "{item:?} copy at foreign {s}");
                }
            }
        }
    }
}
