//! State-space probe: one bounded exhaustive exploration per run, with
//! the explored-state counts on stdout. Used ad hoc for tuning
//! `tests/model_check.rs` depths, and by the CI model-check smoke job
//! (which runs the `clean` and `crash` configs and relies on the
//! nonzero exit + trace file below to surface a violation).
//!
//! Usage: `cargo run --release -p qbc-cluster --example mc_probe -- <config> <depth>`
//! where `<config>` is `clean`, `crash`, `mutant`, `xshard`, or
//! `xclient`. On a violation the counterexample trace is printed and
//! also written to the path in `$MC_TRACE` (default
//! `mc_counterexample.txt`), and the process exits 1.

use qbc_cluster::mc_harness::*;
use qbc_core::{ProtocolKind, TxnId};
use qbc_mc::{Checker, FirePolicy, HostConfig, McConfig};
use qbc_simnet::SiteId;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "clean".into());
    let depth: usize = args.next().and_then(|d| d.parse().ok()).unwrap_or(20);

    let ordered = HostConfig {
        fire_policy: FirePolicy::Lazy,
        ..HostConfig::default()
    };
    let one_crash = HostConfig {
        crash_sites: vec![SiteId(0)],
        max_crashes: 1,
        ..ordered.clone()
    };

    let proto = ProtocolKind::QuorumCommit1;
    let host = match which.as_str() {
        "clean" => single_shard_host(proto, ordered, |c| c),
        "crash" => single_shard_host(proto, one_crash, |c| c),
        "mutant" => single_shard_host(
            proto,
            HostConfig {
                max_drops: std::env::var("MC_DROPS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(4),
                ..one_crash.clone()
            },
            |c| c.with_weakened_qc1(),
        ),
        "xshard" => two_shard_host(proto, one_crash, |c| c),
        "xclient" => client_parent_host(proto, one_crash, |c| c),
        other => panic!("unknown config {other}"),
    };

    let report = Checker::new(McConfig {
        max_depth: depth,
        ..McConfig::default()
    })
    .invariant("atomicity", atomicity(vec![TxnId(1)]))
    .invariant("decision-stability", decision_stability())
    .quiescent_invariant("bounded-termination", quiescent_termination(vec![TxnId(1)]))
    .run(host);
    println!("{which}@{depth}: {}", report.stats.summary());
    if let Some(cex) = report.violation {
        let trace = format!("{which}@{depth}\n{}", cex.render());
        println!("{trace}");
        let path = std::env::var("MC_TRACE").unwrap_or_else(|_| "mc_counterexample.txt".into());
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("failed to write counterexample trace to {path}: {e}");
        } else {
            eprintln!("counterexample trace written to {path}");
        }
        std::process::exit(1);
    }
}
