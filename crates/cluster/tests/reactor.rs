//! The reactor front-end: differential conformance against the
//! threaded baseline, backpressure isolation, and coordinator-kill
//! resubmission. Wall-clock tests — kept small and time-bounded like
//! the threaded suite; the deterministic substrate carries the
//! correctness evidence.

use qbc_cluster::{ClusterConfig, Outcome, ReactorCluster, ReactorConfig, ThreadedCluster};
use qbc_core::{Decision, WriteSet};
use qbc_simnet::Duration;
use qbc_votes::ItemId;
use std::io::Write as _;
use std::os::unix::net::UnixStream;

/// The shared differential workload: conflict-free (every session
/// writes its own items), so on *any* correct substrate every
/// transaction must commit — timing cannot change the answer. Twelve
/// single-shard writesets plus two cross-shard ones (items 0..7 live in
/// shard 0, 8..15 in shard 1).
fn workload() -> Vec<Vec<(ItemId, i64)>> {
    let mut w: Vec<Vec<(ItemId, i64)>> = Vec::new();
    for i in 0..6u32 {
        w.push(vec![(ItemId(i), i as i64 + 100)]);
    }
    for i in 8..14u32 {
        w.push(vec![(ItemId(i), i as i64 + 100)]);
    }
    w.push(vec![(ItemId(6), 1), (ItemId(14), 2)]);
    w.push(vec![(ItemId(7), 3), (ItemId(15), 4)]);
    w
}

#[test]
fn reactor_decisions_match_the_threaded_baseline() {
    let cfg = || ClusterConfig {
        t_bound: Duration(20),
        seed: 21,
        ..Default::default()
    };

    // Reactor substrate: block on every session handle.
    let cluster = ReactorCluster::spawn(cfg(), ReactorConfig::default());
    let handles: Vec<_> = workload().into_iter().map(|w| cluster.submit(w)).collect();
    let reactor: Vec<Decision> = handles
        .into_iter()
        .map(|h| match h.wait() {
            Outcome::Committed { .. } => Decision::Commit,
            Outcome::Aborted { .. } => Decision::Abort,
            other => panic!("reactor session ended {other:?}"),
        })
        .collect();
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    for (h, d) in &report.decisions {
        assert_eq!(*d, Some(Decision::Commit), "{h:?} on the reactor");
    }

    // Threaded baseline: same workload, decisions read at harvest.
    let mut baseline = ThreadedCluster::spawn(cfg(), 1);
    let n = workload().len();
    for w in workload() {
        baseline.submit(WriteSet::new(w));
    }
    std::thread::sleep(std::time::Duration::from_millis(900));
    let report = baseline.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    let threaded: Vec<Decision> = report
        .decisions
        .iter()
        .map(|(h, d)| d.unwrap_or_else(|| panic!("{h:?} undecided on the threaded substrate")))
        .collect();

    assert_eq!(reactor.len(), n);
    assert_eq!(
        reactor, threaded,
        "the two substrates decided the same workload differently"
    );
}

#[test]
fn a_slow_client_does_not_stall_other_sessions() {
    let cfg = ClusterConfig {
        shards: 1,
        t_bound: Duration(20),
        seed: 7,
        ..Default::default()
    };
    let rcfg = ReactorConfig {
        // Tiny reply budget per connection: a few KiB of unread replies
        // (kernel buffer + queued frames) trips the pause.
        write_hwm: 2 * 1024,
        sockbuf: Some(4 * 1024),
        ..Default::default()
    };
    let cluster = ReactorCluster::spawn(cfg, rcfg);

    // The rogue connection floods submissions and never reads a reply.
    let mut rogue = UnixStream::connect(cluster.socket()).expect("connect rogue");
    let mut flood = Vec::new();
    for i in 0..3000u64 {
        let mut payload = Vec::new();
        qbc_reactor::Request::Submit {
            session: i,
            writes: vec![(ItemId(0), i as i64)],
        }
        .encode_into(&mut payload);
        flood.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        flood.extend_from_slice(&payload);
    }
    rogue.write_all(&flood).expect("flood");

    // Unrelated sessions on the well-behaved client keep completing
    // while the rogue connection is paused.
    for round in 0..3 {
        let handles: Vec<_> = (1..8u32)
            .map(|i| cluster.submit(vec![(ItemId(i), round * 10 + i as i64)]))
            .collect();
        for h in handles {
            assert!(
                matches!(h.wait(), Outcome::Committed { .. }),
                "well-behaved session starved in round {round}"
            );
        }
    }

    // The pause must actually have happened (else the test proved
    // nothing): wait briefly for the flood's replies to pile up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while cluster.server_stats().backpressure_stalls == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "flooded connection never hit the write high-water mark"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    drop(rogue);
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    assert!(report.server.backpressure_stalls > 0);
}

#[test]
fn killing_the_coordinator_resubmits_to_a_survivor() {
    let cfg = ClusterConfig {
        shards: 1,
        // Two copies per item: items whose copy pair excludes the
        // victim keep full participation and can still commit (the
        // paper's vote round needs *every* copy site; a transaction
        // touching a dead copy presumed-aborts instead).
        replication: 2,
        t_bound: Duration(20),
        seed: 3,
        ..Default::default()
    };
    let rcfg = ReactorConfig {
        // Fast front-door timeout so begins swallowed whole by the
        // killed site bounce back quickly.
        txn_timeout_ms: 500,
        ..Default::default()
    };
    let cluster = ReactorCluster::spawn(cfg, rcfg);
    let shard = qbc_cluster::ShardId(0);
    let victim = cluster.map().coordinator(shard, 0);
    let spared: Vec<ItemId> = cluster
        .map()
        .catalog(shard)
        .items()
        .filter(|spec| !spec.copies.contains_key(&victim))
        .map(|spec| spec.id)
        .collect();
    assert!(spared.len() >= 2, "placement: {spared:?}");

    // In-flight work racing the kill: every session must still resolve
    // — by the survivors' termination protocol if the victim had
    // started it, by timeout + resubmission if it swallowed the begin.
    let racing: Vec<_> = (0..8u32)
        .map(|i| cluster.submit(vec![(ItemId(i), i as i64)]))
        .collect();
    cluster.kill_site(victim);
    for h in racing {
        let o = h.wait();
        assert!(
            !matches!(o, Outcome::Failed),
            "session racing the kill was dropped on the floor: {o:?}"
        );
    }
    // Let the decision messages reach the copy sites so the racing
    // sessions' pins are released before the fresh round conflicts
    // with them.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // New work after the kill routes around the victim; sessions on
    // items it held no copy of must commit via the survivors.
    let fresh: Vec<_> = spared
        .iter()
        .map(|&item| cluster.submit(vec![(item, 1_000)]))
        .collect();
    for h in fresh {
        let o = h.wait();
        assert!(
            matches!(o, Outcome::Committed { .. }),
            "post-kill submission did not commit via the survivors: {o:?}"
        );
    }

    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
}
