//! Substrate independence: the same cluster commits transactions on
//! real OS threads. Kept small and time-bounded — correctness evidence
//! lives on the deterministic substrate.

use qbc_cluster::{ClusterConfig, ObsConfig, ThreadedCluster};
use qbc_core::WriteSet;
use qbc_simnet::Duration;
use qbc_votes::ItemId;

#[test]
fn threaded_cluster_commits_across_two_shards() {
    let cfg = ClusterConfig {
        // Keep protocol timeouts short in wall-clock terms: ticks map to
        // milliseconds on the threaded transport.
        t_bound: Duration(20),
        ..Default::default()
    };
    let mut cluster = ThreadedCluster::spawn(cfg, 1);
    // One transaction per shard (items 0 and 8 live in shards 0 and 1).
    let h0 = cluster.submit(WriteSet::new([(ItemId(0), 7)]));
    let h1 = cluster.submit(WriteSet::new([(ItemId(8), 9)]));
    assert_ne!(h0.shard, h1.shard, "writesets must route to both shards");
    std::thread::sleep(std::time::Duration::from_millis(600));
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    for (h, d) in &report.decisions {
        assert!(d.is_some(), "{h:?} undecided on the threaded substrate");
    }
    assert_eq!(report.metrics.total_committed(), 2);
}

#[test]
fn threaded_cluster_commits_a_cross_shard_writeset() {
    let cfg = ClusterConfig {
        t_bound: Duration(20),
        seed: 9,
        ..Default::default()
    };
    let mut cluster = ThreadedCluster::spawn(cfg, 1);
    // Items 0 and 8 live in shards 0 and 1: one two-layer commit over
    // the `BeginXTxn` wire path, plus single-shard traffic around it.
    let x = cluster.submit(WriteSet::new([(ItemId(0), 41), (ItemId(8), 42)]));
    let s0 = cluster.submit(WriteSet::new([(ItemId(1), 7)]));
    let s1 = cluster.submit(WriteSet::new([(ItemId(9), 9)]));
    std::thread::sleep(std::time::Duration::from_millis(900));
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    for (h, d) in &report.decisions {
        assert!(d.is_some(), "{h:?} undecided on the threaded substrate");
    }
    let _ = (s0, s1);
    let xd = report
        .decisions
        .iter()
        .find(|(h, _)| h.txn == x.txn)
        .and_then(|(_, d)| *d);
    assert!(xd.is_some(), "cross-shard transaction undecided");
    assert_eq!(report.metrics.total_undecided(), 0);
}

#[test]
fn threaded_cluster_with_group_commit_still_commits() {
    let cfg = ClusterConfig {
        t_bound: Duration(20),
        seed: 5,
        ..Default::default()
    }
    .with_group_commit();
    let mut cluster = ThreadedCluster::spawn(cfg, 1);
    for k in 0..6u32 {
        let item = ItemId((k % 2) * 8 + k / 2);
        cluster.submit(WriteSet::new([(item, k as i64)]));
    }
    std::thread::sleep(std::time::Duration::from_millis(900));
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    let m = &report.metrics;
    assert_eq!(m.total_undecided(), 0, "all transactions must decide");
    assert!(
        m.total_committed() >= 4,
        "only {}/6 committed",
        m.total_committed()
    );
    assert!(m.total_wal_forces() > 0);
}

#[test]
fn threaded_cluster_report_exports_prometheus_text() {
    let cfg = ClusterConfig {
        t_bound: Duration(20),
        seed: 13,
        ..Default::default()
    }
    .with_obs(ObsConfig::on());
    let mut cluster = ThreadedCluster::spawn(cfg, 1);
    let h0 = cluster.submit(WriteSet::new([(ItemId(0), 7)]));
    let h1 = cluster.submit(WriteSet::new([(ItemId(8), 9)]));
    std::thread::sleep(std::time::Duration::from_millis(600));
    let report = cluster.shutdown();
    assert_eq!(report.atomicity_violations, vec![]);
    assert_eq!(report.metrics.total_committed(), 2);
    let _ = (h0, h1);

    // The scrape endpoint's payload: shard metrics plus the observer's
    // protocol counters, in valid exposition format.
    let text = report.prometheus_text();
    assert!(
        text.contains("# TYPE qbc_shard_committed_total counter"),
        "{text}"
    );
    assert!(
        text.contains("qbc_shard_committed_total{shard=\"0\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE qbc_msgs_sent_total counter"),
        "{text}"
    );
    assert!(text.contains("qbc_txns_committed_total 2"), "{text}");
    assert!(text.contains("qbc_commit_latency_ticks_count 2"), "{text}");
    // Histograms render cumulative buckets.
    assert!(
        text.contains("qbc_pin_time_ticks_bucket{le=\"+Inf\"}"),
        "{text}"
    );
}
