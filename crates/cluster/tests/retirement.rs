//! TxnState retirement regression: with a retention window configured,
//! per-site transaction tables stay bounded over a long run (the
//! ROADMAP's "txns tables grow forever" item), while every client
//! handle — including long-retired ones — still resolves and the
//! cluster stays consistent.

use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::WriteSet;
use qbc_simnet::{Duration, Time};
use qbc_votes::ItemId;

const TXNS: u64 = 300;
const THINK: u64 = 40;

fn run(retire: Option<Duration>) -> (SimCluster, usize) {
    let (cluster, peak_table, _) = run_with_horizon(retire, None);
    (cluster, peak_table)
}

/// Drives the shared workload and additionally samples the peak size of
/// the compact retired maps (retired + xretired, max over sites) — the
/// quantity the aging horizon bounds.
fn run_with_horizon(
    retire: Option<Duration>,
    horizon: Option<Duration>,
) -> (SimCluster, usize, usize) {
    let mut cfg = ClusterConfig {
        shards: 2,
        seed: 13,
        ..ClusterConfig::default()
    };
    cfg.retire_after = retire;
    cfg.retire_horizon = horizon;
    let mut cluster = SimCluster::new(cfg);
    let mut peak_table = 0usize;
    let mut peak_retired = 0usize;
    for k in 0..TXNS {
        let ws = if k % 5 == 4 {
            // A cross-shard transaction rides along: its branch state
            // and X-coordination must retire too.
            WriteSet::new([
                (ItemId((k % 8) as u32), k as i64),
                (ItemId(8 + ((k + 3) % 8) as u32), k as i64),
            ])
        } else {
            let shard = (k % 2) as u32;
            WriteSet::new([(ItemId(shard * 8 + ((k / 2) % 8) as u32), k as i64)])
        };
        cluster.submit_at(Time(k * THINK), ws);
    }
    // Drive in slices, sampling the live table size so the *peak* (not
    // just the settled tail) is what the bound holds for.
    let mut t = Time::ZERO;
    while t < Time(TXNS * THINK + 2_000) {
        t = Time(t.0 + THINK * 8);
        cluster.run_until(t);
        let sample: usize = cluster
            .sim()
            .nodes()
            .map(|(_, n)| n.txn_table_len())
            .max()
            .unwrap_or(0);
        peak_table = peak_table.max(sample);
        let retired_sample: usize = cluster
            .sim()
            .nodes()
            .map(|(_, n)| n.retired_len() + n.xretired_len())
            .max()
            .unwrap_or(0);
        peak_retired = peak_retired.max(retired_sample);
    }
    for _ in 0..50 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            break;
        }
    }
    (cluster, peak_table, peak_retired)
}

#[test]
fn retirement_bounds_the_per_site_txn_table() {
    let window = Duration(400);
    let (cluster, peak) = run(Some(window));

    // Consistency and client-visible outcomes are unaffected: every
    // handle resolves even when its state was retired long ago.
    assert_eq!(cluster.atomicity_violations(), vec![]);
    assert_eq!(cluster.engine_violations(), vec![]);
    let handles: Vec<_> = cluster.handles().to_vec();
    assert!(handles.iter().all(|h| cluster.status(h).is_resolved()));

    // The live table is bounded by what can decide inside one retention
    // window (~window/think per shard site plus in-flight), nowhere
    // near the 300-transaction run length.
    let bound = (2 * window.0 / THINK + 20) as usize;
    assert!(
        peak < bound,
        "peak live table {peak} not bounded (want < {bound})"
    );

    // Retirement actually happened, and nothing was lost: per site,
    // live + retired covers every transaction it hosted.
    let mut any_retired = false;
    for (site, node) in cluster.sim().nodes() {
        any_retired |= node.retired_len() > 0;
        assert!(
            node.txn_table_len() + node.retired_len() > 0,
            "{site} hosted nothing?"
        );
    }
    assert!(any_retired, "no site retired anything");
}

#[test]
fn aging_bounds_the_retired_maps() {
    // With a horizon, the compact outcome maps are bounded by what
    // retires inside one horizon; the unaged control accumulates the
    // whole run's history. Same workload, same retention window — the
    // gap is the aging sweep's doing.
    let window = Duration(400);
    let horizon = Duration(1_600);
    let (aged_cluster, _, aged_peak) = run_with_horizon(Some(window), Some(horizon));
    let (control_cluster, _, control_peak) = run_with_horizon(Some(window), None);

    // Aging must not cost correctness: identical workload outcomes.
    assert_eq!(aged_cluster.atomicity_violations(), vec![]);
    assert_eq!(aged_cluster.engine_violations(), vec![]);
    let handles: Vec<_> = aged_cluster.handles().to_vec();
    assert!(handles.iter().all(|h| aged_cluster.status(h).is_resolved()));

    // The unaged control accumulates history (most of the 300-txn run
    // ends up retired somewhere); the aged run stays near what a single
    // horizon can hold.
    assert!(
        control_peak as u64 > TXNS / 3,
        "control retired maps peaked at only {control_peak}"
    );
    let bound = (2 * (window.0 + horizon.0) / THINK + 20) as usize;
    assert!(
        aged_peak < bound,
        "aged retired maps peaked at {aged_peak} (want < {bound})"
    );
    assert!(
        aged_peak * 2 < control_peak,
        "aging saved too little: aged {aged_peak} vs control {control_peak}"
    );
    drop(control_cluster);
}

#[test]
fn without_retirement_the_table_grows_with_the_run() {
    // The control: the seed behaviour keeps every entry forever, so the
    // same workload peaks near its full length — proving the bound
    // above is the retention policy's doing.
    let (cluster, peak) = run(None);
    assert_eq!(cluster.atomicity_violations(), vec![]);
    assert!(
        peak as u64 > TXNS / 2,
        "unretired table peaked at only {peak}"
    );
    for (_, node) in cluster.sim().nodes() {
        assert_eq!(node.retired_len(), 0);
    }
}
