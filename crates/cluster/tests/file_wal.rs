//! File-backed WAL acceptance tests (ISSUE 4):
//!
//! 1. **Backend equivalence** — the same schedule (same seed, same
//!    submissions, same crash/recover points) reaches the same
//!    decisions and the same committed item state on the in-memory
//!    model and on real segment files.
//! 2. **Crash/restart replay** — a cluster is torn down entirely and
//!    rebuilt over the same log directories; recovery (checkpoint
//!    snapshot + suffix replay) reproduces every decision and every
//!    committed value.
//! 3. **Bounded storage** — under sustained load with checkpointing,
//!    on-disk bytes stay bounded while an untruncated control grows
//!    monotonically.
//!
//! Logical crashes only (processes, never the machine), so fsync is
//! off for speed; `e15_file_wal` measures the real device.

use qbc_cluster::{ClusterConfig, ShardId, SimCluster};
use qbc_core::{Decision, WriteSet};
use qbc_simnet::{Duration, SiteId, Time};
use qbc_storage::TempDir;
use qbc_votes::ItemId;
use std::path::Path;

/// A small sharded cluster tuned so retirement and checkpointing both
/// fire many times within a short run.
fn base_config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        shards: 2,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 8,
        seed,
        t_bound: Duration(10),
        ..ClusterConfig::default()
    }
    .with_group_commit()
    .with_retirement(Duration(200))
    .with_checkpoints(Duration(300))
}

fn file_config(seed: u64, dir: &Path) -> ClusterConfig {
    let mut cfg = base_config(seed).with_wal_dir(dir);
    cfg.wal_segment_bytes = 2048;
    cfg.wal_fsync = false;
    cfg
}

/// Deterministic single-shard writesets (the schedule every variant of
/// these tests replays identically).
fn writeset(cluster: &SimCluster, shard: ShardId, k: u64) -> WriteSet {
    let items = cluster.map().items_of(shard);
    let a = items[(k as usize) % items.len()];
    let b = items[(k as usize + 3) % items.len()];
    WriteSet::new([(a, 1000 + k as i64), (b, 2000 + k as i64)])
}

/// Submits `n` transactions round-robin across shards, with a crash and
/// recovery of one site per shard mid-stream.
fn drive(cluster: &mut SimCluster, n: u64) -> Vec<qbc_cluster::TxnHandle> {
    let shards = cluster.map().shards();
    let mut handles = Vec::new();
    for k in 0..n {
        let shard = ShardId((k % shards as u64) as u32);
        let ws = writeset(cluster, shard, k);
        handles.push(cluster.submit_at(Time(10 + k * 25), ws));
    }
    // One participant down and back up mid-stream per shard: recovery
    // replays the log while the load is still running.
    cluster.sim_mut().schedule_crash(Time(400), SiteId(1));
    cluster.sim_mut().schedule_recover(Time(900), SiteId(1));
    cluster.sim_mut().schedule_crash(Time(700), SiteId(4));
    cluster.sim_mut().schedule_recover(Time(1300), SiteId(4));
    let q = cluster.run_to_quiescence(20_000_000);
    assert!(q.drained(), "cluster must quiesce, got {q:?}");
    handles
}

/// `(site, item) -> (version, value)` across the whole cluster.
fn committed_state(cluster: &SimCluster) -> Vec<(SiteId, ItemId, u64, i64)> {
    let mut out = Vec::new();
    for shard in 0..cluster.map().shards() {
        for site in cluster.map().sites_of(ShardId(shard)) {
            let node = cluster.sim().node(site);
            for item in cluster.map().items_of(ShardId(shard)) {
                if let Some((v, val)) = node.item_value(item) {
                    out.push((site, item, v.0, val));
                }
            }
        }
    }
    out
}

#[test]
fn file_backend_reaches_the_same_state_as_memory_on_the_same_schedule() {
    let dir = TempDir::new("cluster-equiv");
    let mut mem = SimCluster::new(base_config(42));
    let mut file = SimCluster::new(file_config(42, dir.path()));

    let mem_handles = drive(&mut mem, 80);
    let file_handles = drive(&mut file, 80);

    assert_eq!(mem.atomicity_violations(), vec![]);
    assert_eq!(file.atomicity_violations(), vec![]);

    let mem_decisions: Vec<Option<Decision>> =
        mem_handles.iter().map(|h| mem.decision(h)).collect();
    let file_decisions: Vec<Option<Decision>> =
        file_handles.iter().map(|h| file.decision(h)).collect();
    assert_eq!(mem_decisions, file_decisions, "decision schedules diverge");
    assert!(
        mem_decisions.iter().filter(|d| d.is_some()).count() >= 70,
        "schedule should mostly resolve"
    );

    assert_eq!(
        committed_state(&mem),
        committed_state(&file),
        "committed item state diverges between backends"
    );

    // The file cluster really ran on files, and checkpoints really
    // truncated prefixes on both backends.
    let file_sites: Vec<SiteId> = (0..file.config().total_sites()).map(SiteId).collect();
    assert!(
        file_sites
            .iter()
            .all(|&s| file.sim().node(s).wal_storage_bytes() > 0),
        "every site should have on-disk segments"
    );
    assert!(
        file_sites
            .iter()
            .any(|&s| file.sim().node(s).wal_start_lsn().0 > 0),
        "checkpointing should have truncated some prefix"
    );
}

#[test]
fn full_restart_replays_checkpoint_plus_suffix_to_the_same_state() {
    let dir = TempDir::new("cluster-restart");
    let (handles, decisions, state) = {
        let mut cluster = SimCluster::new(file_config(7, dir.path()));
        let handles = drive(&mut cluster, 80);
        assert_eq!(cluster.atomicity_violations(), vec![]);
        let decisions: Vec<Option<Decision>> =
            handles.iter().map(|h| cluster.decision(h)).collect();
        assert!(
            decisions.iter().filter(|d| d.is_some()).count() >= 70,
            "first run should mostly resolve"
        );
        // Truncation must have happened, or the restart below would be
        // a plain full replay instead of checkpoint + suffix.
        let truncated = (0..cluster.config().total_sites())
            .map(SiteId)
            .any(|s| cluster.sim().node(s).wal_start_lsn().0 > 0);
        assert!(truncated, "no site ever truncated its log");
        (handles, decisions, committed_state(&cluster))
        // Cluster dropped here: the only durable remnant is the files.
    };

    // A brand-new cluster over the same directories: every node reopens
    // its segments and recovers on startup (`on_start` detects the
    // non-empty log) — no manual crash/recover scheduling, exactly the
    // restart path a real deployment takes.
    let mut restarted = SimCluster::new(file_config(7, dir.path()));
    let q = restarted.run_to_quiescence(20_000_000);
    assert!(q.drained(), "recovery must quiesce, got {q:?}");

    for (h, before) in handles.iter().zip(&decisions) {
        if before.is_some() {
            assert_eq!(
                restarted.decision(h),
                *before,
                "decision for {:?} changed across restart",
                h.txn
            );
        }
    }
    assert_eq!(
        committed_state(&restarted),
        state,
        "committed item state changed across restart"
    );
}

#[test]
fn checkpoints_bound_disk_bytes_while_a_control_grows() {
    let truncated_dir = TempDir::new("cluster-bounded");
    let control_dir = TempDir::new("cluster-control");
    let mut truncated = SimCluster::new(file_config(11, truncated_dir.path()));
    let mut control = {
        let mut cfg = file_config(11, control_dir.path());
        cfg.checkpoint_interval = None; // retirement on, truncation off
        SimCluster::new(cfg)
    };

    let mut truncated_bytes = Vec::new();
    let mut control_bytes = Vec::new();
    let total_bytes = |c: &SimCluster| -> u64 {
        (0..c.config().total_sites())
            .map(|s| c.sim().node(SiteId(s)).wal_storage_bytes())
            .sum()
    };
    // Sustained load in waves; sample the footprint after each.
    let mut k = 0u64;
    for _wave in 0..4 {
        for cluster in [&mut truncated, &mut control] {
            let shards = cluster.map().shards();
            let start = cluster.now().0.max(1);
            for i in 0..60u64 {
                let shard = ShardId(((k + i) % shards as u64) as u32);
                let ws = writeset(cluster, shard, k + i);
                cluster.submit_at(Time(start + i * 25), ws);
            }
            let q = cluster.run_to_quiescence(50_000_000);
            assert!(q.drained());
        }
        k += 60;
        truncated_bytes.push(total_bytes(&truncated));
        control_bytes.push(total_bytes(&control));
    }

    assert_eq!(truncated.atomicity_violations(), vec![]);
    assert_eq!(control.atomicity_violations(), vec![]);

    // The control only ever grows...
    for w in 1..control_bytes.len() {
        assert!(
            control_bytes[w] > control_bytes[w - 1],
            "control stopped growing: {control_bytes:?}"
        );
    }
    // ...while checkpoint truncation holds the footprint well below it.
    let t_final = *truncated_bytes.last().unwrap();
    let c_final = *control_bytes.last().unwrap();
    assert!(
        t_final * 2 < c_final,
        "truncated {t_final} bytes not well below control {c_final}"
    );
    // And every site actually gave bytes back at some point.
    for s in 0..truncated.config().total_sites() {
        assert!(
            truncated.sim().node(SiteId(s)).wal_start_lsn().0 > 0,
            "site {s} never truncated"
        );
    }
}

#[test]
fn byte_triggered_checkpoints_follow_skewed_write_rates() {
    // Two shards with wildly skewed write rates, byte trigger only (no
    // timer): the busy shard's sites cross the byte threshold and
    // truncate their logs; the near-idle shard's sites never accumulate
    // enough bytes and keep their full (tiny) logs. A timer would have
    // checkpointed both alike — triggering on appended bytes makes
    // truncation follow actual log growth.
    let dir = TempDir::new("cluster-ckpt-bytes");
    let mut cfg = file_config(13, dir.path());
    cfg.checkpoint_interval = None;
    let mut cluster = SimCluster::new(cfg.with_checkpoint_bytes(1_500));

    // 90 transactions on shard 0, 2 on shard 1.
    for k in 0..90u64 {
        let ws = writeset(&cluster, ShardId(0), k);
        cluster.submit_at(Time(10 + k * 25), ws);
    }
    for k in 0..2u64 {
        let ws = writeset(&cluster, ShardId(1), k);
        cluster.submit_at(Time(500 + k * 400), ws);
    }
    let q = cluster.run_to_quiescence(50_000_000);
    assert!(q.drained());
    assert_eq!(cluster.atomicity_violations(), vec![]);

    for site in cluster.map().sites_of(ShardId(0)) {
        assert!(
            cluster.sim().node(site).wal_start_lsn().0 > 0,
            "busy {site} never hit the byte trigger"
        );
    }
    for site in cluster.map().sites_of(ShardId(1)) {
        assert_eq!(
            cluster.sim().node(site).wal_start_lsn().0,
            0,
            "quiet {site} checkpointed below the byte threshold"
        );
    }
}

#[test]
fn restarted_cluster_resumes_txn_ids_past_the_durable_maximum() {
    let dir = TempDir::new("cluster-txn-ids");
    let committed_max = {
        let mut cluster = SimCluster::new(file_config(3, dir.path()));
        let handles = drive(&mut cluster, 40);
        assert_eq!(cluster.atomicity_violations(), vec![]);
        // Committed transactions certainly left durable traces; an
        // aborted tail may be presumed-abort (no record anywhere), so
        // its ids are legitimately reusable.
        handles
            .iter()
            .filter(|h| cluster.decision(h) == Some(Decision::Commit))
            .map(|h| h.txn.0)
            .max()
            .unwrap()
        // Cluster dropped; only the log files remain.
    };
    assert!(
        committed_max >= 30,
        "schedule should mostly commit, got {committed_max}"
    );

    // A fresh cluster over the same directories must not hand out ids
    // with a durable trace from the previous incarnation — a durable
    // record of txn k plus a brand-new txn k would corrupt recovery and
    // the audit.
    let mut restarted = SimCluster::new(file_config(3, dir.path()));
    let q = restarted.run_to_quiescence(20_000_000);
    assert!(q.drained(), "recovery must quiesce, got {q:?}");
    let start = restarted.now().0 + 10;
    let ws = writeset(&restarted, ShardId(0), 99);
    let h = restarted.submit_at(Time(start), ws);
    assert!(
        h.txn.0 > committed_max,
        "restart reused txn id {} (durable committed max {committed_max})",
        h.txn.0
    );
    let q = restarted.run_to_quiescence(20_000_000);
    assert!(q.drained());
    assert_eq!(restarted.decision(&h), Some(Decision::Commit));
    assert_eq!(restarted.atomicity_violations(), vec![]);

    // An untouched directory still numbers from 1.
    let fresh_dir = TempDir::new("cluster-txn-ids-fresh");
    let mut fresh = SimCluster::new(file_config(3, fresh_dir.path()));
    let ws = writeset(&fresh, ShardId(0), 0);
    assert_eq!(fresh.submit_at(Time(10), ws).txn.0, 1);
}
