//! Deterministic fault-injection sweep for cross-shard commit: crash
//! the cross-shard coordinator, a remote branch coordinator, or a
//! branch participant at each protocol-step boundary, across fixed
//! seeds. Every cell must show **zero cross-shard atomicity
//! violations** and **eventual termination** (all surviving shards
//! reach the same decision once the crashed site recovers).
//!
//! The matrix result is also written as a JSON report (for the CI
//! artifact): to `$XSHARD_FAULTS_REPORT` when set, else to
//! `target/xshard_faults_report.json`. `$XSHARD_FAULTS_SEEDS` trims the
//! seed list for a smoke subset.

use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{Decision, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::fmt::Write as _;

/// Which site the cell crashes.
#[derive(Clone, Copy, Debug)]
enum Target {
    /// The cross-shard coordinator's site (also home branch coordinator).
    XCoordinator,
    /// The remote shard's branch coordinator.
    BranchCoordinator,
    /// A plain participant of the remote shard.
    Participant,
}

/// Protocol-step boundary the crash lands on (virtual-time offsets from
/// submission, chosen to straddle the step under the default delay
/// model `[1, 10]`; the safety claim must hold wherever they land).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Before the branches' `VOTE-REQ` rounds complete.
    PrePrepare,
    /// After in-shard votes, during the prepare rounds.
    PostVote,
    /// While `X-VOTE`s converge, before the decision is forced.
    PreDecisionForce,
    /// After the cross-shard decision, during the `X-DECIDE` relay.
    PostDecision,
}

impl Step {
    fn crash_at(self) -> Time {
        match self {
            Step::PrePrepare => Time(3),
            Step::PostVote => Time(25),
            Step::PreDecisionForce => Time(48),
            Step::PostDecision => Time(80),
        }
    }
}

const TARGETS: [Target; 3] = [
    Target::XCoordinator,
    Target::BranchCoordinator,
    Target::Participant,
];
const STEPS: [Step; 4] = [
    Step::PrePrepare,
    Step::PostVote,
    Step::PreDecisionForce,
    Step::PostDecision,
];
const SEEDS: [u64; 3] = [1, 17, 4242];

struct CellOutcome {
    target: Target,
    step: Step,
    seed: u64,
    committed: u64,
    aborted: u64,
    violations: usize,
    /// Every safety/liveness check the cell failed (empty in a correct
    /// run). Collected instead of asserted so the matrix always
    /// completes and the report records *what* broke before the test
    /// fails.
    failures: Vec<String>,
}

/// Runs one matrix cell: a 2-shard cluster, one cross-shard transaction
/// under crash-fire plus background traffic, the chosen site crashed at
/// the chosen step and recovered later. Returns the cell's tallies and
/// any check failures for the report.
fn run_cell(target: Target, step: Step, seed: u64) -> CellOutcome {
    let mut c = SimCluster::new(ClusterConfig {
        shards: 2,
        seed,
        ..ClusterConfig::default()
    });
    // The transaction under fire: shards 0+1, submitted first so its
    // coordinators are deterministic (round-robin from zero — the
    // cross-shard coordinator is site 0, the remote branch coordinator
    // site 3; sites 4..6 are plain shard-1 participants).
    let hot = c.submit_at(Time(0), WriteSet::new([(ItemId(0), 77), (ItemId(8), 88)]));
    assert_eq!(hot.coordinator, SiteId(0));
    // Background traffic on both shards, one more cross-shard among it.
    for k in 0..6u64 {
        let ws = match k % 3 {
            0 => WriteSet::new([(ItemId(1 + (k % 4) as u32), k as i64)]),
            1 => WriteSet::new([(ItemId(9 + (k % 4) as u32), k as i64)]),
            _ => WriteSet::new([(ItemId(5), 50 + k as i64), (ItemId(13), 60 + k as i64)]),
        };
        c.submit_at(Time(10 + k * 35), ws);
    }

    let victim = match target {
        Target::XCoordinator => SiteId(0),
        Target::BranchCoordinator => SiteId(3),
        Target::Participant => SiteId(4),
    };
    c.sim_mut().schedule_crash(step.crash_at(), victim);
    c.sim_mut().schedule_recover(Time(900), victim);

    let mut drained = false;
    for _ in 0..100 {
        if c.run_to_quiescence(5_000_000).drained() {
            drained = true;
            break;
        }
    }
    let mut failures = Vec::new();
    if !drained {
        failures.push("never quiesced".to_string());
    }
    let (metrics, violations) = c.metrics_and_violations();
    for v in &violations {
        failures.push(format!("atomicity violation: {v:?}"));
    }
    for (site, v) in c.engine_violations() {
        failures.push(format!("engine violation at {site}: {v:?}"));
    }
    if metrics.total_undecided() != 0 {
        failures.push(format!(
            "{} transactions never terminated",
            metrics.total_undecided()
        ));
    }

    // Cross-shard agreement: every site that decided the hot
    // transaction decided the same way, across both shards.
    let hot_decision = c.decision(&hot);
    let mut deciders = 0;
    for (site, node) in c.sim().nodes() {
        if let Some(d) = node.decision(hot.txn) {
            deciders += 1;
            if Some(d) != hot_decision {
                failures.push(format!("{site} disagrees on the hot transaction"));
            }
        }
    }
    // The crashed site recovered, so at least one full shard (and with
    // a commit, both) must know the outcome.
    if deciders < 3 {
        failures.push(format!("only {deciders} sites decided the hot transaction"));
    }
    if hot_decision == Some(Decision::Commit) {
        for item in [ItemId(0), ItemId(8)] {
            let installed = c
                .sim()
                .nodes()
                .filter_map(|(_, n)| n.item_value(item))
                .any(|(_, v)| v == if item == ItemId(0) { 77 } else { 88 });
            if !installed {
                failures.push(format!("committed value of {item:?} missing"));
            }
        }
    }

    CellOutcome {
        target,
        step,
        seed,
        committed: metrics.total_committed(),
        aborted: metrics.total_aborted(),
        violations: violations.len(),
        failures,
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// Rust's `{:?}` escaping is not JSON-compliant (`\u{e9}` forms).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn seeds() -> Vec<u64> {
    match std::env::var("XSHARD_FAULTS_SEEDS") {
        Ok(n) => {
            let n: usize = n.parse().expect("XSHARD_FAULTS_SEEDS must be a count");
            SEEDS[..n.clamp(1, SEEDS.len())].to_vec()
        }
        Err(_) => SEEDS.to_vec(),
    }
}

#[test]
fn fault_matrix_is_atomic_and_terminates_in_every_cell() {
    let mut outcomes = Vec::new();
    for &seed in &seeds() {
        for target in TARGETS {
            for step in STEPS {
                outcomes.push(run_cell(target, step, seed));
            }
        }
    }
    // Write the report BEFORE asserting, so a failing sweep still
    // leaves the full diagnostic artifact for CI to upload.
    let mut json = String::from("{\n  \"cells\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let failures = o
            .failures
            .iter()
            .map(|f| json_str(f))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"target\": \"{:?}\", \"step\": \"{:?}\", \"seed\": {}, \
             \"committed\": {}, \"aborted\": {}, \"atomicity_violations\": {}, \
             \"failures\": [{}]}}{}",
            o.target,
            o.step,
            o.seed,
            o.committed,
            o.aborted,
            o.violations,
            failures,
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let total_violations: usize = outcomes.iter().map(|o| o.violations).sum();
    let failed: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .map(|o| {
            format!(
                "[{:?} × {:?} × seed {}]: {}",
                o.target,
                o.step,
                o.seed,
                o.failures.join("; ")
            )
        })
        .collect();
    let _ = write!(
        json,
        "  ],\n  \"total_cells\": {},\n  \"failed_cells\": {},\n  \
         \"total_atomicity_violations\": {}\n}}\n",
        outcomes.len(),
        failed.len(),
        total_violations
    );
    let path = std::env::var("XSHARD_FAULTS_REPORT")
        .unwrap_or_else(|_| "../../target/xshard_faults_report.json".to_string());
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write fault report to {path}: {e}");
    }
    assert!(
        failed.is_empty(),
        "{} of {} cells failed:\n{}",
        failed.len(),
        outcomes.len(),
        failed.join("\n")
    );
    assert_eq!(total_violations, 0);
}
