//! Exhaustive model checking of the commit/termination protocols on
//! small configurations (the PR-7 tentpole acceptance suite).
//!
//! Each test builds a `mc_harness` host, hands it to the `qbc-mc`
//! checker, and asserts either *zero* invariant violations over the
//! full bounded state space (clean protocol) or that a deliberately
//! seeded mutation is caught with a replayable counterexample.
//!
//! All runs use [`FirePolicy::Lazy`] — timeouts fire only at network
//! quiescence, with drop budgets covering the timeout-vs-loss races —
//! which is what makes the exploration close: the clean 3-site space is
//! 81 states, the one-crash space 388. The free-fire semantics (clock
//! drift, process pauses) is exercised by the pinned regression
//! schedules in `tests/mc_regressions.rs` instead of by search.
//!
//! See `docs/model-checking.md` for the state model, the reductions,
//! and how to read a counterexample trace.

use qbc_cluster::mc_harness::{
    atomicity, client_parent_host, decision_stability, paxos_host, quiescent_termination,
    single_shard_host, two_shard_host,
};
use qbc_core::{Decision, ProtocolKind, TxnId};
use qbc_db::SiteNode;
use qbc_mc::{replay, Checker, Choice, FirePolicy, HostConfig, McConfig};
use qbc_simnet::SiteId;

/// The three safety/termination invariants every exploration runs.
fn protocol_checker(cfg: McConfig) -> Checker<SiteNode> {
    Checker::new(cfg)
        .invariant("atomicity", atomicity(vec![TxnId(1)]))
        .invariant("decision-stability", decision_stability())
        .quiescent_invariant("bounded-termination", quiescent_termination(vec![TxnId(1)]))
}

fn lazy() -> HostConfig {
    HostConfig {
        fire_policy: FirePolicy::Lazy,
        ..HostConfig::default()
    }
}

fn one_crash() -> HostConfig {
    HostConfig {
        crash_sites: vec![SiteId(0)],
        max_crashes: 1,
        ..lazy()
    }
}

#[test]
fn qc1_three_sites_no_faults_is_exhaustively_clean() {
    let host = single_shard_host(ProtocolKind::QuorumCommit1, lazy(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 20,
        ..McConfig::default()
    })
    .run(host);
    println!("qc1 clean: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert_eq!(report.stats.frontier_cut, 0, "space must close below depth");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

#[test]
fn qc1_three_sites_one_crash_is_exhaustively_clean() {
    let host = single_shard_host(ProtocolKind::QuorumCommit1, one_crash(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 30,
        ..McConfig::default()
    })
    .run(host);
    println!("qc1 one crash: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert_eq!(report.stats.frontier_cut, 0, "space must close below depth");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

#[test]
fn weakened_qc1_mutation_is_caught_with_replayable_trace() {
    // The weakened commit point (one PC-ack of slack) lets the
    // coordinator reach a durable Decided{Commit} on its self-ack
    // alone; losing the prepares and the commit announcements and then
    // crashing the coordinator leaves the survivors to run the
    // termination protocol from Wait — which correctly aborts.
    let make_host = || {
        single_shard_host(
            ProtocolKind::QuorumCommit1,
            HostConfig {
                max_drops: 4,
                ..one_crash()
            },
            |cfg| cfg.with_weakened_qc1(),
        )
    };
    let report = protocol_checker(McConfig {
        max_depth: 24,
        ..McConfig::default()
    })
    .run(make_host());
    let cex = report
        .violation
        .expect("the weakened commit-quorum check must violate atomicity");
    println!("mutation caught: {}", report.stats.summary());
    println!("{}", cex.render());
    assert_eq!(cex.invariant, "atomicity");
    assert!(
        cex.schedule.contains(&Choice::Crash { site: SiteId(0) }),
        "the minimal trace crashes the over-eager coordinator"
    );

    // The counterexample replays deterministically to a disagreeing
    // end state on a fresh host.
    let (end, _) = replay(make_host(), &cex.schedule);
    let survivor_ds: Vec<Option<Decision>> = end
        .sites()
        .filter(|&s| end.is_up(s))
        .map(|s| end.node(s).decision(TxnId(1)))
        .collect();
    assert!(
        survivor_ds.contains(&Some(Decision::Abort)),
        "survivors must have aborted: {survivor_ds:?}"
    );
    let durable_commit = end.sites().any(|s| {
        end.node(s).log_records().any(|r| {
            matches!(
                r,
                qbc_core::LogRecord::Decided {
                    txn: TxnId(1),
                    decision: Decision::Commit,
                    ..
                }
            )
        })
    });
    assert!(
        durable_commit,
        "the crashed coordinator holds a durable commit"
    );
}

#[test]
fn paxos_three_sites_no_faults_is_exhaustively_clean() {
    let host = paxos_host(lazy(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 24,
        ..McConfig::default()
    })
    .run(host);
    println!("paxos clean: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert_eq!(report.stats.frontier_cut, 0, "space must close below depth");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

/// One *acceptor* crash (site 1): the leader survives, so this space
/// exercises losing one member of the 2F+1 acceptor set — the 2a/2b
/// round must still choose through the remaining majority.
#[test]
fn paxos_one_acceptor_crash_is_exhaustively_clean() {
    let host = paxos_host(
        HostConfig {
            crash_sites: vec![SiteId(1)],
            max_crashes: 1,
            ..lazy()
        },
        |cfg| cfg,
    );
    let report = protocol_checker(McConfig {
        max_depth: 30,
        ..McConfig::default()
    })
    .run(host);
    println!("paxos acceptor crash: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert_eq!(report.stats.frontier_cut, 0, "space must close below depth");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

/// The coordinator (= ballot-0 leader) crash: every interleaving of the
/// crash against the vote/2a/2b traffic, with the survivors' watchdogs
/// standing up Phase-1a recovery candidates. This is the space that
/// proves leader failover terminates without the blocked windows 2PC
/// shows in E16.
#[test]
fn paxos_coordinator_crash_is_exhaustively_clean() {
    let host = paxos_host(one_crash(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 34,
        ..McConfig::default()
    })
    .run(host);
    println!("paxos coordinator crash: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert_eq!(report.stats.frontier_cut, 0, "space must close below depth");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

#[test]
fn weakened_paxos_mutation_is_caught_with_replayable_trace() {
    // The weakened acceptor quorum (F instead of F+1 2b echoes) lets
    // the ballot-0 leader reach a durable Decided{Commit} on its own
    // co-located acceptor alone; dropping the 2a broadcasts and the
    // commit announcements and then crashing the leader leaves a
    // recovery candidate whose Phase-1 majority saw nothing accepted —
    // presumed abort, against the leader's durable commit.
    let make_host = || {
        paxos_host(
            HostConfig {
                max_drops: 4,
                ..one_crash()
            },
            |cfg| cfg.with_weakened_paxos(),
        )
    };
    let report = protocol_checker(McConfig {
        max_depth: 28,
        ..McConfig::default()
    })
    .run(make_host());
    let cex = report
        .violation
        .expect("the weakened acceptor quorum must violate atomicity");
    println!("paxos mutation caught: {}", report.stats.summary());
    println!("{}", cex.render());
    assert_eq!(cex.invariant, "atomicity");
    assert!(
        cex.schedule.contains(&Choice::Crash { site: SiteId(0) }),
        "the minimal trace crashes the under-quorumed leader"
    );

    // The counterexample replays deterministically to a disagreeing
    // end state on a fresh host.
    let (end, _) = replay(make_host(), &cex.schedule);
    let survivor_ds: Vec<Option<Decision>> = end
        .sites()
        .filter(|&s| end.is_up(s))
        .map(|s| end.node(s).decision(TxnId(1)))
        .collect();
    assert!(
        survivor_ds.contains(&Some(Decision::Abort)),
        "survivors must have aborted: {survivor_ds:?}"
    );
    let durable_commit = end.sites().any(|s| {
        end.node(s).log_records().any(|r| {
            matches!(
                r,
                qbc_core::LogRecord::Decided {
                    txn: TxnId(1),
                    decision: Decision::Commit,
                    ..
                }
            )
        })
    });
    assert!(
        durable_commit,
        "the crashed leader holds a durable commit chosen by too few acceptors"
    );
}

#[test]
fn cross_shard_parent_crash_is_exhaustively_clean() {
    let host = two_shard_host(ProtocolKind::QuorumCommit1, one_crash(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 40,
        ..McConfig::default()
    })
    .run(host);
    println!("xshard parent crash: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}

/// The cross-shard configuration where the parent holds no branch
/// (`client_parent_host`): crashing it orphans *both* branch
/// coordinators, and every interleaving in which the decision got out
/// must be resolvable through cooperative sibling discovery. The only
/// schedules that do not quiesce below the depth bound are the ones
/// where the parent died before anyone learned the outcome — there the
/// orphans retry discovery forever by design (only parent recovery can
/// answer), which the depth bound cuts.
#[test]
fn cross_shard_client_parent_crash_is_exhaustively_clean() {
    let host = client_parent_host(ProtocolKind::QuorumCommit1, one_crash(), |cfg| cfg);
    let report = protocol_checker(McConfig {
        max_depth: 40,
        ..McConfig::default()
    })
    .run(host);
    println!("xshard client-parent crash: {}", report.stats.summary());
    if let Some(cex) = &report.violation {
        panic!("unexpected violation:\n{}", cex.render());
    }
    assert!(report.stats.complete, "exploration must finish in budget");
    assert!(report.stats.quiescent > 0, "must reach decided quiescence");
}
