//! Deterministic fault-injection sweep for Paxos Commit (PR-9
//! satellite, the `xshard_faults.rs` pattern applied to the sixth
//! engine): crash the leader, one acceptor (majority survives), or two
//! acceptors (majority lost) at each protocol-step boundary, across
//! fixed seeds. Every cell must show **zero atomicity violations** and
//! **eventual termination** — leader failover covers the first two
//! rows outright; the majority-lost row may only stall until the
//! acceptors recover, never decide wrongly.
//!
//! The matrix result is also written as a JSON report (for the CI
//! artifact): to `$PAXOS_FAULTS_REPORT` when set, else to
//! `target/paxos_faults_report.json`. `$PAXOS_FAULTS_SEEDS` trims the
//! seed list for a smoke subset.

use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{Decision, ProtocolKind, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::fmt::Write as _;

/// Which sites the cell crashes.
#[derive(Clone, Copy, Debug)]
enum Target {
    /// The transaction coordinator = ballot-0 Paxos leader (site 0).
    /// Its co-located acceptor dies with it; the surviving 2-of-3
    /// acceptor majority lets a recovery candidate finish.
    Coordinator,
    /// One non-leader acceptor (site 1): F = 1 failures, the quorum
    /// the protocol is sized for.
    AcceptorMajoritySurvives,
    /// Two non-leader acceptors (sites 1 and 2): only F acceptors
    /// remain, so nothing may be chosen until one recovers — the
    /// protocol must stall safely, not guess.
    AcceptorMajorityLost,
}

/// Protocol-step boundary the crashes land on (virtual-time offsets
/// from submission, chosen to straddle the step under the default
/// delay model `[1, 10]`; the safety claim must hold wherever they
/// land).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Before the `VOTE-REQ` round completes.
    PreVote,
    /// After the votes, while the Phase-2a batch and 2b echoes fly.
    ProposalInFlight,
    /// After the decision, during the commit/abort announcements.
    PostDecision,
}

impl Step {
    fn crash_at(self) -> Time {
        match self {
            Step::PreVote => Time(3),
            Step::ProposalInFlight => Time(25),
            Step::PostDecision => Time(70),
        }
    }
}

const TARGETS: [Target; 3] = [
    Target::Coordinator,
    Target::AcceptorMajoritySurvives,
    Target::AcceptorMajorityLost,
];
const STEPS: [Step; 3] = [Step::PreVote, Step::ProposalInFlight, Step::PostDecision];
const SEEDS: [u64; 3] = [1, 17, 4242];

struct CellOutcome {
    target: Target,
    step: Step,
    seed: u64,
    committed: u64,
    aborted: u64,
    violations: usize,
    /// Every safety/liveness check the cell failed (empty in a correct
    /// run). Collected instead of asserted so the matrix always
    /// completes and the report records *what* broke before the test
    /// fails.
    failures: Vec<String>,
}

/// Runs one matrix cell: a single-shard 3-site Paxos Commit cluster,
/// one transaction under fire plus background traffic, the chosen
/// sites crashed at the chosen step and recovered later. Returns the
/// cell's tallies and any check failures for the report.
fn run_cell(target: Target, step: Step, seed: u64) -> CellOutcome {
    let mut c = SimCluster::new(ClusterConfig {
        shards: 1,
        protocol: ProtocolKind::PaxosCommit,
        seed,
        ..ClusterConfig::default()
    });
    // The transaction under fire, submitted first so its coordinator
    // is deterministic (round-robin from zero: site 0, which is also
    // the ballot-0 leader and one of the three co-located acceptors).
    let hot = c.submit_at(Time(0), WriteSet::new([(ItemId(0), 77)]));
    assert_eq!(hot.coordinator, SiteId(0));
    // Background traffic so the sweep exercises acceptor-table
    // bookkeeping across transactions, not a single pristine instance.
    for k in 0..5u64 {
        let ws = WriteSet::new([(ItemId(1 + (k % 4) as u32), k as i64)]);
        c.submit_at(Time(10 + k * 35), ws);
    }

    let victims: &[SiteId] = match target {
        Target::Coordinator => &[SiteId(0)],
        Target::AcceptorMajoritySurvives => &[SiteId(1)],
        Target::AcceptorMajorityLost => &[SiteId(1), SiteId(2)],
    };
    for (i, &v) in victims.iter().enumerate() {
        c.sim_mut().schedule_crash(step.crash_at(), v);
        // Staggered recovery keeps the two majority-lost corpses from
        // reappearing in lockstep.
        c.sim_mut().schedule_recover(Time(900 + i as u64 * 60), v);
    }

    let mut drained = false;
    for _ in 0..100 {
        if c.run_to_quiescence(5_000_000).drained() {
            drained = true;
            break;
        }
    }
    let mut failures = Vec::new();
    if !drained {
        failures.push("never quiesced".to_string());
    }
    let (metrics, violations) = c.metrics_and_violations();
    for v in &violations {
        failures.push(format!("atomicity violation: {v:?}"));
    }
    for (site, v) in c.engine_violations() {
        failures.push(format!("engine violation at {site}: {v:?}"));
    }
    if metrics.total_undecided() != 0 {
        failures.push(format!(
            "{} transactions never terminated",
            metrics.total_undecided()
        ));
    }

    // Agreement: somebody decided the hot transaction, every site that
    // decided it agrees, and no site is left knowing the transaction
    // without a verdict after recovery. A site that crashed before its
    // `VOTE-REQ` arrived legitimately never learns the transaction
    // exists — presumed abort covers it, so it owes no decision.
    let hot_decision = c.decision(&hot);
    if hot_decision.is_none() {
        failures.push("no site ever decided the hot transaction".to_string());
    }
    for (site, node) in c.sim().nodes() {
        match node.decision(hot.txn) {
            Some(d) if Some(d) != hot_decision => {
                failures.push(format!("{site} disagrees on the hot transaction"));
            }
            None if node.known_txns().contains(&hot.txn) => {
                failures.push(format!(
                    "{site} knows the hot transaction but never decided it"
                ));
            }
            _ => {}
        }
    }
    if hot_decision == Some(Decision::Commit) {
        let installed = c
            .sim()
            .nodes()
            .filter_map(|(_, n)| n.item_value(ItemId(0)))
            .any(|(_, v)| v == 77);
        if !installed {
            failures.push("committed value of x0 missing".to_string());
        }
    }

    CellOutcome {
        target,
        step,
        seed,
        committed: metrics.total_committed(),
        aborted: metrics.total_aborted(),
        violations: violations.len(),
        failures,
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// Rust's `{:?}` escaping is not JSON-compliant (`\u{e9}` forms).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn seeds() -> Vec<u64> {
    match std::env::var("PAXOS_FAULTS_SEEDS") {
        Ok(n) => {
            let n: usize = n.parse().expect("PAXOS_FAULTS_SEEDS must be a count");
            SEEDS[..n.clamp(1, SEEDS.len())].to_vec()
        }
        Err(_) => SEEDS.to_vec(),
    }
}

#[test]
fn paxos_fault_matrix_is_atomic_and_terminates_in_every_cell() {
    let mut outcomes = Vec::new();
    for &seed in &seeds() {
        for target in TARGETS {
            for step in STEPS {
                outcomes.push(run_cell(target, step, seed));
            }
        }
    }
    // Write the report BEFORE asserting, so a failing sweep still
    // leaves the full diagnostic artifact for CI to upload.
    let mut json = String::from("{\n  \"cells\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let failures = o
            .failures
            .iter()
            .map(|f| json_str(f))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"target\": \"{:?}\", \"step\": \"{:?}\", \"seed\": {}, \
             \"committed\": {}, \"aborted\": {}, \"atomicity_violations\": {}, \
             \"failures\": [{}]}}{}",
            o.target,
            o.step,
            o.seed,
            o.committed,
            o.aborted,
            o.violations,
            failures,
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let total_violations: usize = outcomes.iter().map(|o| o.violations).sum();
    let failed: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .map(|o| {
            format!(
                "[{:?} × {:?} × seed {}]: {}",
                o.target,
                o.step,
                o.seed,
                o.failures.join("; ")
            )
        })
        .collect();
    let _ = write!(
        json,
        "  ],\n  \"total_cells\": {},\n  \"failed_cells\": {},\n  \
         \"total_atomicity_violations\": {}\n}}\n",
        outcomes.len(),
        failed.len(),
        total_violations
    );
    let path = std::env::var("PAXOS_FAULTS_REPORT")
        .unwrap_or_else(|_| "../../target/paxos_faults_report.json".to_string());
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write fault report to {path}: {e}");
    }
    assert!(
        failed.is_empty(),
        "{} of {} cells failed:\n{}",
        failed.len(),
        outcomes.len(),
        failed.join("\n")
    );
    assert_eq!(total_violations, 0);
}
