//! Cross-engine equivalence property (PR-9 satellite): one workload,
//! one crash/recovery schedule, six commit engines — and the decided
//! outcomes must line up transaction for transaction.
//!
//! The property is deliberately stated over *decided* outcomes:
//! engines differ in how long a fault can keep them in doubt (2PC
//! blocks until the coordinator returns; the quorum and Paxos engines
//! terminate through survivors), so the universally comparable claim
//! is that whenever every engine reaches a verdict for a transaction,
//! it is the same verdict. Conflict-free writesets keep the workload
//! itself deterministic across engines — lock-conflict aborts depend
//! on per-protocol message timing and would make the comparison
//! vacuous.
//!
//! The crash-free anchor is stronger: with nobody failing, every
//! engine must commit every transaction outright, which pins the
//! happy path of all six engines to one another (and to the obvious
//! expected outcome), not merely to each other's indecision.

use proptest::prelude::*;
use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{Decision, ProtocolKind, TxnId, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;
use std::collections::BTreeMap;

/// Every commit engine the cluster can run, in a fixed comparison
/// order. `ProtocolKind::ALL` is re-asserted against this list so a
/// seventh engine cannot be added without extending the equivalence
/// property.
const ENGINES: [ProtocolKind; 6] = [
    ProtocolKind::TwoPhase,
    ProtocolKind::ThreePhase,
    ProtocolKind::SkeenQuorum,
    ProtocolKind::QuorumCommit1,
    ProtocolKind::QuorumCommit2,
    ProtocolKind::PaxosCommit,
];

#[test]
fn engines_list_covers_every_protocol_kind() {
    assert_eq!(ENGINES, ProtocolKind::ALL);
}

/// One run of the shared workload under one engine: per-transaction
/// outcomes (`None` = still in doubt anywhere it is known at all).
fn run_engine(
    protocol: ProtocolKind,
    seed: u64,
    group_commit: bool,
    txns: &[(bool, i64)],
    crash: Option<(u32, u64)>,
) -> Option<BTreeMap<TxnId, Option<Decision>>> {
    let mut cfg = ClusterConfig {
        protocol,
        seed,
        ..ClusterConfig::default()
    };
    if group_commit {
        cfg = cfg.with_group_commit();
    }
    let mut cluster = SimCluster::new(cfg);
    // Transaction k owns items {k, k + 8}: item k lives in shard 0,
    // item k + 8 in shard 1, so `cross` flips between a single-shard
    // and a cross-shard transaction — with writesets disjoint across
    // transactions by construction.
    let mut handles = Vec::new();
    for (k, &(cross, value)) in txns.iter().enumerate() {
        let mut pairs = vec![(ItemId(k as u32), value)];
        if cross {
            pairs.push((ItemId(k as u32 + 8), value + 1));
        }
        handles.push(cluster.submit_at(Time(k as u64 * 45), WriteSet::new(pairs)));
    }
    if let Some((site, at)) = crash {
        cluster.sim_mut().schedule_crash(Time(at), SiteId(site));
        cluster
            .sim_mut()
            .schedule_recover(Time(at + 600), SiteId(site));
    }
    let mut drained = false;
    for _ in 0..100 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            drained = true;
            break;
        }
    }
    if !drained {
        return None;
    }
    assert!(
        cluster.atomicity_violations().is_empty(),
        "{protocol:?}: atomicity violated (seed {seed})"
    );
    assert!(
        cluster.engine_violations().is_empty(),
        "{protocol:?}: engine violation (seed {seed})"
    );
    let mut outcomes: BTreeMap<TxnId, Option<Decision>> = BTreeMap::new();
    for h in &handles {
        let mut decision = None;
        for (site, node) in cluster.sim().nodes() {
            if let Some(d) = node.decision(h.txn) {
                if let Some(prev) = decision.replace(d) {
                    assert_eq!(
                        prev, d,
                        "{protocol:?}: {:?} decided both ways by {site} (seed {seed})",
                        h.txn
                    );
                }
            }
        }
        outcomes.insert(h.txn, decision);
    }
    Some(outcomes)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The same conflict-free workload and the same crash/recovery
    /// schedule, replayed under all six engines: every transaction all
    /// six decide gets the same verdict everywhere, and without any
    /// crash all six commit everything.
    #[test]
    fn identical_workloads_decide_identically_across_all_six_engines(
        seed in 0u64..10_000,
        txns in proptest::collection::vec(
            (proptest::bool::ANY, 0i64..1_000),
            2..=6,
        ),
        crash in proptest::option::of((0u32..6u32, 20u64..350u64)),
        group_commit in proptest::bool::ANY,
    ) {
        let mut per_engine: Vec<(ProtocolKind, BTreeMap<TxnId, Option<Decision>>)> = Vec::new();
        for protocol in ENGINES {
            let outcomes = run_engine(protocol, seed, group_commit, &txns, crash);
            prop_assert!(
                outcomes.is_some(),
                "{:?} never quiesced (seed {})", protocol, seed
            );
            per_engine.push((protocol, outcomes.unwrap()));
        }
        let (_, reference) = &per_engine[0];
        for txn in reference.keys() {
            // Whenever every engine decides, the verdicts must agree.
            let verdicts: Vec<(ProtocolKind, Option<Decision>)> = per_engine
                .iter()
                .map(|(p, o)| (*p, o[txn]))
                .collect();
            if verdicts.iter().all(|(_, d)| d.is_some()) {
                let first = verdicts[0].1;
                prop_assert!(
                    verdicts.iter().all(|(_, d)| *d == first),
                    "{:?} diverged across engines: {:?} (seed {})",
                    txn, verdicts, seed
                );
            }
            // Crash-free anchor: all six must commit outright.
            if crash.is_none() {
                prop_assert!(
                    verdicts.iter().all(|(_, d)| *d == Some(Decision::Commit)),
                    "{:?} must commit under every engine without faults: {:?} (seed {})",
                    txn, verdicts, seed
                );
            }
        }
    }
}
