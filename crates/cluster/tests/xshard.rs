//! End-to-end cross-shard transactions on the deterministic substrate:
//! multi-shard writesets through `Session::submit`, committed values
//! installed on every involved shard, no-votes and lock conflicts
//! aborting every branch together.

use qbc_cluster::{ClusterConfig, ShardId, SimCluster, TxnStatus};
use qbc_core::{Decision, WriteSet};
use qbc_db::ReadResult;
use qbc_simnet::Time;
use qbc_votes::ItemId;

fn cluster(shards: u32, seed: u64) -> SimCluster {
    SimCluster::new(ClusterConfig {
        shards,
        seed,
        ..ClusterConfig::default()
    })
}

/// One item per involved shard (items are contiguous per shard, 8 each
/// under the default config).
fn xws(shards: &[u32], base: i64) -> WriteSet {
    WriteSet::new(
        shards
            .iter()
            .enumerate()
            .map(|(i, &s)| (ItemId(s * 8 + (i as u32 % 8)), base + i as i64)),
    )
}

#[test]
fn cross_shard_writeset_commits_end_to_end() {
    let mut c = cluster(2, 1);
    let mut session = c.open_session();
    let h = c.submit(&mut session, Time(0), xws(&[0, 1], 100));
    let d = c.await_decision(&h, Time(100_000));
    assert_eq!(d, Some(Decision::Commit));
    c.run_to_quiescence(5_000_000);
    assert_eq!(c.status(&h), TxnStatus::Committed);
    assert_eq!(c.shards_of(&h), vec![ShardId(0), ShardId(1)]);
    assert_eq!(
        c.sim().node(h.coordinator).x_decision(h.txn),
        Some(Decision::Commit),
        "the cross-shard coordinator records the top-level decision"
    );
    assert_eq!(c.atomicity_violations(), vec![]);
    assert_eq!(c.engine_violations(), vec![]);

    // Every site of both shards decided commit, and the written values
    // are durably installed on every copy.
    for (site, node) in c.sim().nodes() {
        assert_eq!(
            node.decision(h.txn),
            Some(Decision::Commit),
            "{site} disagrees"
        );
    }
    let reads = [c.read_at(c.now(), ItemId(0)), c.read_at(c.now(), ItemId(9))];
    // Poll within the collectors' lifetime (resolved collectors retire
    // a couple of windows after their timeout; quiescence would run
    // past the retire timers and drop the entries).
    c.run_until(Time(reads[0].submitted_at.0 + 35));
    for (r, want) in reads.iter().zip([100, 101]) {
        match c.read_result(r) {
            Some(ReadResult::Success { value, .. }) => assert_eq!(value, want),
            other => panic!("read of {:?} did not succeed: {other:?}", r.item),
        }
    }
}

#[test]
fn three_shard_transaction_commits_once_per_shard_version() {
    let mut c = cluster(3, 5);
    let h = c.submit_at(Time(0), xws(&[0, 1, 2], 500));
    assert_eq!(c.await_decision(&h, Time(100_000)), Some(Decision::Commit));
    c.run_to_quiescence(5_000_000);
    assert_eq!(c.atomicity_violations(), vec![]);
    assert_eq!(c.engine_violations(), vec![]);
    let m = c.metrics();
    assert_eq!(m.total_committed(), 1);
    assert_eq!(m.total_undecided(), 0);
}

#[test]
fn conflicting_cross_shard_transactions_stay_atomic() {
    // Two cross-shard transactions over the same items, submitted
    // simultaneously: no-wait 2PL makes at least one branch vote no at
    // one shard; that abort must reach the *other* shard's branch too.
    let mut c = cluster(2, 7);
    let a = c.submit_at(Time(0), xws(&[0, 1], 100));
    let b = c.submit_at(Time(0), xws(&[0, 1], 200));
    c.run_to_quiescence(5_000_000);
    assert_eq!(c.atomicity_violations(), vec![]);
    assert_eq!(c.engine_violations(), vec![]);
    for h in [&a, &b] {
        let d = c.decision(h);
        assert!(d.is_some(), "{h:?} undecided");
        // Same outcome at every site of both shards.
        for (site, node) in c.sim().nodes() {
            if let Some(site_d) = node.decision(h.txn) {
                assert_eq!(site_d, d.unwrap(), "{site} disagrees on {h:?}");
            }
        }
    }
}

#[test]
fn mixed_single_and_cross_shard_load_settles_consistently() {
    let mut c = cluster(3, 11);
    for k in 0..40u64 {
        let at = Time(k * 40);
        let ws = match k % 4 {
            // Single-shard fillers on rotating shards.
            0 | 1 => {
                let shard = (k % 3) as u32;
                WriteSet::new([(ItemId(shard * 8 + (k % 8) as u32), k as i64)])
            }
            // Two-shard.
            2 => xws(&[(k % 3) as u32, ((k + 1) % 3) as u32], k as i64),
            // Three-shard.
            _ => xws(&[0, 1, 2], k as i64),
        };
        c.submit_at(at, ws);
    }
    let mut drained = false;
    for _ in 0..50 {
        if c.run_to_quiescence(5_000_000).drained() {
            drained = true;
            break;
        }
    }
    assert!(drained, "cluster must quiesce");
    assert_eq!(c.atomicity_violations(), vec![]);
    assert_eq!(c.engine_violations(), vec![]);
    let m = c.metrics();
    assert_eq!(m.total_undecided(), 0);
    assert_eq!(m.total_committed() + m.total_aborted(), 40);
    assert!(
        m.total_committed() >= 40 * 6 / 10,
        "only {}/40 committed",
        m.total_committed()
    );
    let handles: Vec<_> = c.handles().to_vec();
    assert!(handles.iter().all(|h| c.status(h).is_resolved()));
}

#[test]
fn xshard_determinism_same_seed_same_outcome() {
    let run = || {
        let mut c = cluster(2, 23);
        for k in 0..20u64 {
            c.submit_at(Time(k * 30), xws(&[0, 1], k as i64));
        }
        c.run_to_quiescence(10_000_000);
        let m = c.metrics();
        (m.total_committed(), m.total_aborted(), m.total_wal_forces())
    };
    assert_eq!(run(), run());
}
