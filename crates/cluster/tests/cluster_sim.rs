//! Deterministic-substrate integration tests for the cluster runtime:
//! many concurrent transactions across shards, with and without group
//! commit, with and without failures — always atomic, always resolving.

use qbc_cluster::{ClusterConfig, ShardId, SimCluster};
use qbc_core::{Decision, WriteSet};
use qbc_db::ReadResult;
use qbc_simnet::{Duration, SiteId, Time};
use qbc_votes::ItemId;

/// A writeset of one or two items within one shard, varied by index.
fn writeset(cluster: &SimCluster, shard: ShardId, k: u64) -> WriteSet {
    let items = cluster.map().items_of(shard);
    let a = items[(k as usize) % items.len()];
    let b = items[(k as usize + 3) % items.len()];
    if a == b {
        WriteSet::new([(a, 100 + k as i64)])
    } else {
        WriteSet::new([(a, 100 + k as i64), (b, 200 + k as i64)])
    }
}

fn drive(mut cluster: SimCluster, n_txns: u64, interarrival: u64) {
    let shards = cluster.map().shards();
    let mut sessions: Vec<_> = (0..4).map(|_| cluster.open_session()).collect();
    for k in 0..n_txns {
        let shard = ShardId((k % shards as u64) as u32);
        let ws = writeset(&cluster, shard, k);
        let at = Time(k * interarrival);
        let s = (k as usize) % sessions.len();
        cluster.submit(&mut sessions[s], at, ws);
    }
    let q = cluster.run_to_quiescence(10_000_000);
    assert!(q.drained(), "cluster must quiesce, got {q:?}");

    // Every handle resolves, across every session.
    let deadline = cluster.now();
    for session in &sessions {
        for (h, d) in cluster.await_all(session, deadline) {
            assert!(d.is_some(), "handle {h:?} did not resolve");
        }
    }

    // Zero consistency violations, cluster-level and engine-level.
    assert_eq!(cluster.atomicity_violations(), vec![]);
    assert_eq!(cluster.engine_violations(), vec![]);

    // The metrics registry agrees: everything decided, most committed
    // (low contention; occasional no-wait lock conflicts abort a few).
    let m = cluster.metrics();
    assert_eq!(m.total_undecided(), 0);
    let decided = m.total_committed() + m.total_aborted();
    assert_eq!(decided, n_txns);
    assert!(
        m.total_committed() >= n_txns * 7 / 10,
        "only {}/{} committed",
        m.total_committed(),
        n_txns
    );
    for (i, s) in m.shards.iter().enumerate() {
        assert!(s.submitted > 0, "shard {i} never used");
        assert!(s.latency.count() > 0, "shard {i} recorded no latencies");
        assert!(s.wal_forces > 0, "shard {i} paid no forces");
    }
}

#[test]
fn sixty_concurrent_txns_across_two_shards_stay_atomic() {
    drive(SimCluster::new(ClusterConfig::default()), 60, 25);
}

#[test]
fn group_commit_cluster_stays_atomic_and_saves_forces() {
    let base = ClusterConfig {
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut plain = SimCluster::new(base.clone());
    let mut batched = SimCluster::new(
        ClusterConfig {
            force_latency: Duration(4),
            ..base
        }
        .with_group_commit(),
    );
    for cluster in [&mut plain, &mut batched] {
        let shards = cluster.map().shards();
        for k in 0..60u64 {
            let shard = ShardId((k % shards as u64) as u32);
            let ws = writeset(cluster, shard, k);
            cluster.submit_at(Time(k * 20), ws);
        }
        let q = cluster.run_to_quiescence(10_000_000);
        assert!(q.drained());
        assert_eq!(cluster.atomicity_violations(), vec![]);
        assert_eq!(cluster.engine_violations(), vec![]);
    }
    let (mp, mb) = (plain.metrics(), batched.metrics());
    assert_eq!(mp.total_undecided(), 0);
    assert_eq!(mb.total_undecided(), 0);
    assert!(
        mb.total_wal_forces() < mp.total_wal_forces(),
        "batched paid {} forces vs per-record {}",
        mb.total_wal_forces(),
        mp.total_wal_forces()
    );
}

#[test]
fn four_shard_cluster_commits_under_load() {
    let cfg = ClusterConfig {
        shards: 4,
        items_per_shard: 6,
        seed: 3,
        ..Default::default()
    };
    drive(SimCluster::new(cfg), 80, 15);
}

#[test]
fn coordinator_crash_mid_stream_keeps_the_cluster_atomic() {
    let mut cluster = SimCluster::new(ClusterConfig {
        seed: 11,
        ..Default::default()
    });
    let shards = cluster.map().shards();
    for k in 0..50u64 {
        let shard = ShardId((k % shards as u64) as u32);
        let ws = writeset(&cluster, shard, k);
        cluster.submit_at(Time(k * 30), ws);
    }
    // Crash one site of shard 0 mid-stream; recover it later.
    cluster.sim_mut().schedule_crash(Time(600), SiteId(0));
    cluster.sim_mut().schedule_recover(Time(1_400), SiteId(0));
    let q = cluster.run_to_quiescence(20_000_000);
    assert!(q.drained());
    assert_eq!(cluster.atomicity_violations(), vec![]);
    assert_eq!(cluster.engine_violations(), vec![]);
    let m = cluster.metrics();
    assert_eq!(
        m.total_undecided(),
        0,
        "healed cluster must decide everything it accepted"
    );
    // Submissions aimed at the crashed site while it was down are
    // rejected (never reached a coordinator), and every handle reaches a
    // terminal status.
    let rejected: u64 = m.shards.iter().map(|s| s.rejected).sum();
    assert!(rejected < 10, "too many rejected: {rejected}");
    let statuses: Vec<_> = cluster
        .handles()
        .to_vec()
        .iter()
        .map(|h| cluster.status(h))
        .collect();
    assert!(statuses.iter().all(|s| s.is_resolved()));
    assert!(m.total_committed() > 25);
}

#[test]
fn quorum_reads_resolve_against_committed_writes() {
    let mut cluster = SimCluster::new(ClusterConfig::default());
    let item = ItemId(0);
    let h = cluster.submit_at(Time(0), WriteSet::new([(item, 42)]));
    let d = cluster.await_decision(&h, Time(5_000));
    assert_eq!(d, Some(Decision::Commit));
    assert_eq!(cluster.status(&h), qbc_cluster::TxnStatus::Committed);
    // Let the remaining participants decide and release their locks: a
    // copy pinned by an undecided transaction is unreadable (the paper's
    // blocked-locks effect), so reading at the first decision instant
    // can legitimately return Unavailable.
    cluster.run_to_quiescence(1_000_000);
    let r = cluster.read_at(cluster.now(), item);
    // Poll within the collector's lifetime: resolved collectors retire
    // a couple of collection windows after their timeout, so running to
    // quiescence here would drain the retire timer and drop the entry.
    cluster.run_until(Time(r.submitted_at.0 + 35));
    match cluster.read_result(&r) {
        Some(ReadResult::Success { value, .. }) => assert_eq!(value, 42),
        other => panic!("read did not succeed: {other:?}"),
    }
}

#[test]
fn determinism_same_seed_same_metrics() {
    let run = || {
        let mut c = SimCluster::new(ClusterConfig {
            seed: 99,
            ..Default::default()
        });
        for k in 0..30u64 {
            let shard = ShardId((k % 2) as u32);
            let ws = writeset(&c, shard, k);
            c.submit_at(Time(k * 17), ws);
        }
        c.run_to_quiescence(10_000_000);
        let m = c.metrics();
        (
            m.total_committed(),
            m.total_aborted(),
            m.total_wal_forces(),
            m.mean_latency().to_bits(),
        )
    };
    assert_eq!(run(), run());
}
