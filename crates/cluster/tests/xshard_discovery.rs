//! Cooperative cross-shard outcome discovery (PR-7 satellite): when the
//! parent X coordinator dies after deciding, an orphaned branch asks
//! its *sibling* branch coordinators for the outcome alongside the
//! (dead) parent — any branch that learned the top-level decision can
//! answer, so the branch's blocked window ends at the first discovery
//! round instead of stretching until parent recovery.
//!
//! The host is [`client_parent_host`]: parent at site 0 holds no
//! branch, shard A's coordinator is site 1, shard B's is site 2. That
//! separation matters — in [`two_shard_host`] the parent doubles as a
//! branch coordinator, so "ask the parent" and "ask the sibling" name
//! the same site and cooperation is invisible.

use qbc_cluster::mc_harness::{
    atomicity, client_parent_host, decision_stability, deliver, drop_in_flight, find_in_flight,
    CLIENT,
};
use qbc_core::{Decision, LogRecord, ProtocolKind, TxnId};
use qbc_db::SiteNode;
use qbc_mc::{Choice, ControlledHost, HostConfig};
use qbc_obs::{Obs, ObsConfig};
use qbc_simnet::SiteId;
use std::sync::Arc;

const PARENT: SiteId = SiteId(0);
const S1: SiteId = SiteId(1);
const S2: SiteId = SiteId(2);
const TXN: TxnId = TxnId(1);

/// Fires site `s`'s earliest pending timer until `pred` holds, bounded
/// by `limit` fires (skips over no-op expiries like a held branch's
/// stale vote-collection window).
fn fire_until(
    h: &mut ControlledHost<SiteNode>,
    s: SiteId,
    limit: usize,
    pred: impl Fn(&ControlledHost<SiteNode>) -> bool,
) {
    for _ in 0..limit {
        if pred(h) {
            return;
        }
        assert!(
            h.pending_timers().iter().any(|t| t.site == s),
            "{s} has no timers left to fire"
        );
        h.apply(Choice::Fire { site: s });
    }
    assert!(pred(h), "predicate still false after {limit} fires at {s}");
}

/// Builds the host and runs the shared prefix: the transaction commits
/// top-level, shard A learns it, the X-DECIDE to shard B is lost, and
/// the parent crashes — leaving site 2 held at its commit point with a
/// dead outcome authority.
fn orphaned_branch_b(max_drops: u32, obs: &Arc<Obs>) -> ControlledHost<SiteNode> {
    let host_cfg = HostConfig {
        crash_sites: vec![PARENT],
        max_crashes: 1,
        max_drops,
        ..HostConfig::default()
    };
    let o = obs.clone();
    let mut h = client_parent_host(ProtocolKind::QuorumCommit1, host_cfg, move |cfg| {
        cfg.with_obs(o.clone())
    });

    deliver(&mut h, CLIENT, PARENT, "BeginXTxn");
    deliver(&mut h, PARENT, S1, "XBranchReq"); // shard A runs to Held
    deliver(&mut h, PARENT, S2, "XBranchReq"); // shard B runs to Held
    deliver(&mut h, S1, PARENT, "XVote");
    deliver(&mut h, S2, PARENT, "XVote"); // all yes: top-level commit
    assert_eq!(h.node(PARENT).x_decision(TXN), Some(Decision::Commit));

    deliver(&mut h, PARENT, S1, "XDecide"); // shard A commits
    assert_eq!(h.node(S1).decision(TXN), Some(Decision::Commit));
    drop_in_flight(&mut h, PARENT, S2, "XDecide"); // shard B's copy is lost
    h.apply(Choice::Crash { site: PARENT });
    assert_eq!(
        h.node(S2).decision(TXN),
        None,
        "shard B must be orphaned at its commit point"
    );
    h
}

/// One discovery round at site 2: the watchdog expires, and the asks go
/// to the dead parent *and* the living sibling.
fn fire_discovery_round(h: &mut ControlledHost<SiteNode>) {
    fire_until(h, S2, 5, |h| {
        h.in_flight()
            .iter()
            .any(|m| m.from == S2 && format!("{:?}", m.msg).contains("XOutcomeReq"))
    });
    // The cooperative ask targets the sibling, not just the parent.
    find_in_flight(h, S2, PARENT, "XOutcomeReq");
    find_in_flight(h, S2, S1, "XOutcomeReq");
    deliver(h, S2, PARENT, "XOutcomeReq"); // swallowed by the corpse
}

#[test]
fn sibling_answers_the_outcome_while_the_parent_is_down() {
    let obs = Arc::new(Obs::new(ObsConfig::on()));
    let mut h = orphaned_branch_b(1, &obs);

    fire_discovery_round(&mut h);
    deliver(&mut h, S2, S1, "XOutcomeReq"); // the sibling is decided…
    deliver(&mut h, S1, S2, "XDecide"); // …and relays the outcome

    // Shard B commits off the sibling's versionless answer (its own
    // held engine supplies the branch commit version) with the parent
    // still dead.
    assert!(!h.is_up(PARENT));
    assert_eq!(h.node(S2).decision(TXN), Some(Decision::Commit));
    assert!(
        h.node(S2).log_records().any(|r| matches!(
            r,
            LogRecord::Decided {
                txn: TXN,
                decision: Decision::Commit,
                ..
            }
        )),
        "the discovered outcome must be durable at shard B"
    );
    atomicity(vec![TXN])(&h).unwrap();
    decision_stability()(&h).unwrap();

    // The observability layer saw the discovery traffic: this is the
    // measured blocked window the satellite shrinks.
    let dump = obs.dump("sibling discovery resolved shard B");
    println!("{dump}");
    assert!(dump.contains("x-outcome-req-out"), "{dump}");
}

/// The A/B control for the blocked window: withholding the sibling asks
/// (losing them round after round) models the old parent-only
/// discovery — shard B stays blocked for exactly as many rounds as
/// sibling cooperation is denied, and resolves at the first round it is
/// allowed through.
#[test]
fn blocked_window_lasts_while_sibling_asks_are_withheld() {
    let obs = Arc::new(Obs::new(ObsConfig::on()));
    // 1 drop for the X-DECIDE + 3 withheld sibling asks.
    let mut h = orphaned_branch_b(4, &obs);

    for round in 0..3 {
        fire_discovery_round(&mut h);
        drop_in_flight(&mut h, S2, S1, "XOutcomeReq"); // deny cooperation
        assert_eq!(
            h.node(S2).decision(TXN),
            None,
            "round {round}: parent-only discovery cannot resolve a dead parent"
        );
    }

    // First round with the sibling ask delivered: the window closes.
    fire_discovery_round(&mut h);
    deliver(&mut h, S2, S1, "XOutcomeReq");
    deliver(&mut h, S1, S2, "XDecide");
    assert_eq!(h.node(S2).decision(TXN), Some(Decision::Commit));
    atomicity(vec![TXN])(&h).unwrap();
}
