//! Pinned counterexample schedules from model-checker runs (PR-7
//! satellite: every trace the checker found during development stays
//! behind as a deterministic regression).
//!
//! Two families live here:
//!
//! 1. **The unvoted-veto race** — a *real* protocol bug the checker
//!    found in the clean implementation under free timer fires: a site
//!    that had never voted joined a termination round via an election
//!    message, seeded `Initial` into the leader's state view (rule 2:
//!    immediate abort), and then answered a late `VoteReq` with a yes
//!    vote — letting the coordinator commit what termination was
//!    already aborting. The fix makes the unvoted site's veto durable
//!    and irrevocable (`Participant::veto_abort`). The schedule that
//!    found it is replayed here against the fixed code.
//!
//! 2. **The weakened-commit-point mutation** — the seeded mutation the
//!    ISSUE plants to validate the checker end-to-end. Its minimal
//!    20-step counterexample is pinned choice-for-choice, and the same
//!    adversarial schedule is shown to be harmless against the real
//!    commit rule.
//!
//! Schedules are reconstructed by *shape* (from/to/payload needle)
//! rather than raw sequence numbers so they stay readable and survive
//! refactors that renumber messages without changing behavior.

use qbc_cluster::mc_harness::{
    atomicity, decision_stability, deliver, drop_in_flight as drop_msg, single_shard_host, CLIENT,
};
use qbc_core::{Decision, LogRecord, ProtocolKind, TxnId};
use qbc_db::SiteNode;
use qbc_mc::{Choice, ControlledHost, HostConfig};
use qbc_obs::{Obs, ObsConfig};
use qbc_simnet::SiteId;
use std::sync::Arc;

const S0: SiteId = SiteId(0);
const S1: SiteId = SiteId(1);
const S2: SiteId = SiteId(2);

/// Drives the host to quiescence (delivering everything, then firing
/// timers in deadline order), checking the safety invariants after
/// every step. Panics if the system is still busy after `limit` steps.
///
/// Fires pick the globally earliest pending deadline — a *fair*
/// schedule. Always firing one site's timers while another's sit
/// overdue forever models a permanently-paused-yet-responsive process,
/// which no liveness claim survives.
fn drain(h: &mut ControlledHost<SiteNode>, limit: usize) {
    let safety = atomicity(vec![TxnId(1)]);
    let stability = decision_stability();
    let mut recent = std::collections::VecDeque::new();
    for _ in 0..limit {
        let next_fire = h
            .pending_timers()
            .iter()
            .map(|t| (t.deadline, t.site))
            .min()
            .map(|(_, site)| Choice::Fire { site });
        let Some(choice) = h
            .enabled_choices()
            .into_iter()
            .find(|c| matches!(c, Choice::Deliver { .. }))
            .or(next_fire)
        else {
            return;
        };
        if recent.len() == 12 {
            recent.pop_front();
        }
        recent.push_back(h.describe(choice));
        h.apply(choice);
        safety(h).unwrap_or_else(|e| panic!("atomicity violated while draining: {e}"));
        stability(h).unwrap_or_else(|e| panic!("stability violated while draining: {e}"));
    }
    panic!(
        "host did not quiesce within {limit} steps; last choices:\n{}",
        recent.into_iter().collect::<Vec<_>>().join("\n")
    );
}

/// The unvoted-veto race, found by the checker on a fault-free 3-site
/// QC1 run under free timer fires (an early watchdog at s1 starts an
/// election before s2 has even received its `VoteReq`).
///
/// Pre-fix, this 10-step schedule ended with s0 committed and s2
/// aborted. Post-fix, delivering the election message to the unvoted
/// s2 makes its abort durable *before* it answers anything, the late
/// `VoteReq` gets a `Decided{Abort}` reply instead of a yes vote, and
/// the whole cluster converges on abort.
#[test]
fn pinned_unvoted_veto_race_now_converges_on_abort() {
    // Free fire policy: the trigger needs s1's watchdog to fire while
    // votes are still on the wire, which Lazy/Ordered would forbid.
    let mut h = single_shard_host(ProtocolKind::QuorumCommit1, HostConfig::default(), |c| c);

    deliver(&mut h, CLIENT, S0, "BeginTxn"); // 0
    deliver(&mut h, S0, S1, "VoteReq"); // 1
    deliver(&mut h, S1, S0, "Vote"); // 2
    h.apply(Choice::Fire { site: S1 }); // 3: CoordinatorWatch -> election
    deliver(&mut h, S1, S2, "Election"); // 4: s2 learns the spec unvoted

    // The fix under test: joining termination while `Initial` must
    // leave a durable, irrevocable veto behind.
    assert_eq!(
        h.node(S2).decision(TxnId(1)),
        Some(Decision::Abort),
        "unvoted site drawn into termination must veto-abort durably"
    );
    assert!(
        h.node(S2)
            .log_records()
            .any(|r| matches!(r, LogRecord::VotedNo { txn: TxnId(1) })),
        "the veto must hit the log, not just volatile state"
    );

    // Historical step 5: the late VoteReq reaches the vetoed site. It
    // must NOT produce a yes vote any more.
    deliver(&mut h, S0, S2, "VoteReq"); // 5
    assert!(
        !h.in_flight()
            .iter()
            .any(|m| m.from == S2 && format!("{:?}", m.msg).contains("yes: true")),
        "vetoed site must never vote yes afterwards"
    );

    // Let everything else play out; safety is re-checked every step.
    drain(&mut h, 300);
    for s in [S0, S1, S2] {
        assert_eq!(
            h.node(s).decision(TxnId(1)),
            Some(Decision::Abort),
            "{s} must settle on the veto's abort"
        );
    }
}

/// Builds the mutation host: weakened QC1 commit point, one coordinator
/// crash, four message losses — exactly the budgets the checker search
/// in `model_check.rs` uses.
fn mutation_host(weakened: bool, obs: Option<Arc<Obs>>) -> ControlledHost<SiteNode> {
    single_shard_host(
        ProtocolKind::QuorumCommit1,
        HostConfig {
            crash_sites: vec![S0],
            max_crashes: 1,
            max_drops: 4,
            ..HostConfig::default()
        },
        move |mut cfg| {
            if weakened {
                cfg = cfg.with_weakened_qc1();
            }
            match &obs {
                Some(o) => cfg.with_obs(o.clone()),
                None => cfg,
            }
        },
    )
}

/// The minimal counterexample the checker finds for the seeded
/// weakened-commit-point mutation, pinned choice-for-choice: lose both
/// prepares and both commit announcements, crash the coordinator that
/// (wrongly) reached its commit point on the self-ack alone, and let
/// the survivors' termination round abort from `Wait`/`Wait`.
#[test]
fn pinned_mutation_counterexample_reproduces_the_violation() {
    let obs = Arc::new(Obs::new(ObsConfig::on()));
    let mut h = mutation_host(true, Some(obs.clone()));

    deliver(&mut h, CLIENT, S0, "BeginTxn"); // 0
    deliver(&mut h, S0, S1, "VoteReq"); // 1
    deliver(&mut h, S0, S2, "VoteReq"); // 2
    deliver(&mut h, S1, S0, "Vote"); // 3
    deliver(&mut h, S2, S0, "Vote"); // 4

    // The mutated coordinator is now durably committed on one self-ack.
    assert!(
        h.node(S0).log_records().any(|r| matches!(
            r,
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                ..
            }
        )),
        "weakened commit point must fire on the self-ack alone"
    );

    drop_msg(&mut h, S0, S1, "PrepareCommit"); // 5
    drop_msg(&mut h, S0, S2, "PrepareCommit"); // 6
    drop_msg(&mut h, S0, S1, "Commit"); // 7
    drop_msg(&mut h, S0, S2, "Commit"); // 8
    h.apply(Choice::Crash { site: S0 }); // 9

    h.apply(Choice::Fire { site: S2 }); // 10: CoordinatorWatch
    deliver(&mut h, S2, S0, "Election"); // 11: swallowed by the corpse
    deliver(&mut h, S2, S1, "Election"); // 12
    deliver(&mut h, S2, S0, "StateReq"); // 13: swallowed by the corpse
    deliver(&mut h, S2, S1, "StateReq"); // 14
    deliver(&mut h, S1, S2, "StateRep"); // 15
    h.apply(Choice::Fire { site: S1 }); // 16: CoordinatorWatch
    h.apply(Choice::Fire { site: S2 }); // 17: StateCollection expiry
    deliver(&mut h, S2, S1, "PrepareAbort"); // 18
    deliver(&mut h, S1, S2, "PaAck"); // 19

    // The violation: a durable commit in the crashed coordinator's log,
    // an abort among the survivors.
    let violation = atomicity(vec![TxnId(1)])(&h).expect_err("the pinned schedule must violate");
    assert!(violation.contains("committed"), "{violation}");
    assert_eq!(h.node(S2).decision(TxnId(1)), Some(Decision::Abort));

    // Dump the flight recorder the way a checker-driven harness would
    // on any violation: the timeline of both sides of the split brain.
    let dump = obs.dump("pinned mutation counterexample: durable commit at s0, abort at s2");
    println!("{dump}");
    assert!(dump.contains("flight recorder"), "{dump}");
}

/// Builds the Paxos mutation host: weakened acceptor quorum (F 2b
/// echoes instead of F+1), one leader crash, four message losses — the
/// budgets the `weakened_paxos_mutation_is_caught_with_replayable_trace`
/// search in `model_check.rs` uses.
fn paxos_mutation_host(weakened: bool) -> ControlledHost<SiteNode> {
    single_shard_host(
        ProtocolKind::PaxosCommit,
        HostConfig {
            crash_sites: vec![S0],
            max_crashes: 1,
            max_drops: 4,
            ..HostConfig::default()
        },
        move |cfg| {
            if weakened {
                cfg.with_weakened_paxos()
            } else {
                cfg
            }
        },
    )
}

/// The counterexample the checker finds for the seeded acceptor-quorum
/// mutation, pinned by shape: under `weaken`, F = 1 acceptance
/// suffices, so the ballot-0 leader reaches a durable `Decided{Commit}`
/// off its own co-located acceptor's 2b alone — before any other
/// acceptor saw the 2a. Dropping both outbound 2a's and both commit
/// announcements and crashing the leader leaves survivors whose
/// recovery quorum (also weakened to one promise — its own) saw nothing
/// accepted: presumed abort, split-brain against the leader's log.
///
/// The honest F+1 rule makes this impossible by quorum intersection:
/// any decision quorum and any recovery quorum share an acceptor, so a
/// chosen batch is always visible to the candidate (the
/// `recovery_adopts_accepted_value_and_reruns_phase2` unit test drives
/// that path directly).
#[test]
fn pinned_paxos_mutation_counterexample_reproduces_the_violation() {
    let mut h = paxos_mutation_host(true);

    deliver(&mut h, CLIENT, S0, "BeginTxn"); // 0
    deliver(&mut h, S0, S1, "VoteReq"); // 1
    deliver(&mut h, S0, S2, "VoteReq"); // 2
    deliver(&mut h, S1, S0, "Vote"); // 3
    deliver(&mut h, S2, S0, "Vote"); // 4

    // The mutated leader is durably committed: its own acceptor's 2b
    // (local self-delivery) met the weakened quorum of one.
    assert!(
        h.node(S0).log_records().any(|r| matches!(
            r,
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                ..
            }
        )),
        "weakened acceptor quorum must choose on the self-echo alone"
    );

    drop_msg(&mut h, S0, S1, "PaxosP2a"); // 5
    drop_msg(&mut h, S0, S2, "PaxosP2a"); // 6
    drop_msg(&mut h, S0, S1, "Commit"); // 7
    drop_msg(&mut h, S0, S2, "Commit"); // 8
    h.apply(Choice::Crash { site: S0 }); // 9

    // One watchdog fire is the whole failover under the mutation: the
    // candidate's weakened Phase-1 quorum is its own acceptor, which
    // accepted nothing — presumed abort, driven through a (weakened)
    // Phase 2 against itself, all in local self-delivery.
    h.apply(Choice::Fire { site: S2 }); // 10: CoordinatorWatch
    assert_eq!(h.node(S2).decision(TxnId(1)), Some(Decision::Abort));

    // The violation: a durable commit in the crashed leader's log, an
    // abort among the survivors.
    let violation = atomicity(vec![TxnId(1)])(&h).expect_err("the pinned schedule must violate");
    assert!(violation.contains("committed"), "{violation}");
}

/// The same adversarial schedule against the real F+1 rule: the
/// leader's own 2b echo is one acceptance short of a quorum, so no
/// commit ever becomes durable; the crash leaves the survivors'
/// recovery candidates to presume abort — correctly, because nothing
/// was chosen — and atomicity holds throughout.
#[test]
fn pinned_paxos_mutation_schedule_is_harmless_without_the_mutation() {
    let mut h = paxos_mutation_host(false);

    deliver(&mut h, CLIENT, S0, "BeginTxn");
    deliver(&mut h, S0, S1, "VoteReq");
    deliver(&mut h, S0, S2, "VoteReq");
    deliver(&mut h, S1, S0, "Vote");
    deliver(&mut h, S2, S0, "Vote");

    // Real rule: the self-echo is 1 of F+1 = 2; no decision yet, and
    // no Commit announcements exist to drop.
    assert_eq!(h.node(S0).decision(TxnId(1)), None);

    drop_msg(&mut h, S0, S1, "PaxosP2a");
    drop_msg(&mut h, S0, S2, "PaxosP2a");
    h.apply(Choice::Crash { site: S0 });

    drain(&mut h, 300);
    for s in [S1, S2] {
        assert_eq!(
            h.node(s).decision(TxnId(1)),
            Some(Decision::Abort),
            "{s}: survivors abort the unchosen transaction"
        );
    }
    assert!(
        !h.node(S0).log_records().any(|r| matches!(
            r,
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                ..
            }
        )),
        "the honest leader must not hold a durable commit"
    );
}

/// The same adversarial schedule against the *real* commit rule: with
/// four losses and the coordinator crash, the survivors still abort —
/// but the coordinator never reached its commit point, so there is no
/// durable commit anywhere and atomicity holds throughout.
#[test]
fn pinned_mutation_schedule_is_harmless_without_the_mutation() {
    let mut h = mutation_host(false, None);

    deliver(&mut h, CLIENT, S0, "BeginTxn");
    deliver(&mut h, S0, S1, "VoteReq");
    deliver(&mut h, S0, S2, "VoteReq");
    deliver(&mut h, S1, S0, "Vote");
    deliver(&mut h, S2, S0, "Vote");

    // Real rule: one self-ack is not w = 2; no decision yet, and no
    // Commit announcements exist to drop.
    assert_eq!(h.node(S0).decision(TxnId(1)), None);

    drop_msg(&mut h, S0, S1, "PrepareCommit");
    drop_msg(&mut h, S0, S2, "PrepareCommit");
    h.apply(Choice::Crash { site: S0 });

    drain(&mut h, 300);
    for s in [S1, S2] {
        assert_eq!(
            h.node(s).decision(TxnId(1)),
            Some(Decision::Abort),
            "{s}: survivors abort the orphaned transaction"
        );
    }
    assert!(
        !h.node(S0).log_records().any(|r| matches!(
            r,
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                ..
            }
        )),
        "the honest coordinator must not hold a durable commit"
    );
}
