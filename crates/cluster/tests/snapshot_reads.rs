//! Snapshot-read consistency properties (ISSUE 8) under random crash
//! schedules:
//!
//! 1. **No undecided data** — a snapshot read's value is always the
//!    initial value or the write of a transaction that had *already
//!    committed* at the moment the read was answered; in-flight and
//!    aborted writes are invisible at any watermark.
//! 2. **Session monotonicity** — successive snapshot reads of one item
//!    through one session never go backwards in version, even when the
//!    reads land on different coordinators with different watermarks.
//!
//! The golden-digest determinism tests (`determinism.rs`) separately
//! pin that all of this machinery is inert when the feature is off.

use qbc_cluster::{ClusterConfig, ShardId, SimCluster};
use qbc_core::{Decision, WriteSet};
use qbc_db::ReadResult;
use qbc_simnet::{SiteId, Time};
use qbc_votes::{ItemId, Version};
use std::collections::BTreeMap;

/// Tiny deterministic generator for the crash schedules (keeps the
/// test free of RNG crates; constants from Knuth's MMIX LCG).
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn snapshot_reads_observe_only_committed_data_and_never_go_backwards() {
    for seed in 0..8u64 {
        let mut c = SimCluster::new(
            ClusterConfig {
                seed,
                ..ClusterConfig::default()
            }
            .with_snapshot_reads(4),
        );
        let shards = c.map().shards();
        let total_sites = c.config().total_sites();

        // 40 writes with per-(item, txn) unique values, so any observed
        // value identifies exactly the transaction that wrote it.
        let mut writes: BTreeMap<ItemId, BTreeMap<i64, qbc_cluster::TxnHandle>> = BTreeMap::new();
        for k in 0..40u64 {
            let shard = ShardId((k % shards as u64) as u32);
            let items = c.map().items_of(shard);
            let item = items[(k as usize / shards as usize) % items.len()];
            let value = 10_000 + k as i64;
            let h = c.submit_at(Time(k * 30), WriteSet::new([(item, value)]));
            writes.entry(item).or_default().insert(value, h);
        }

        // A random crash/recover pair per shard-ish, derived from the
        // seed: reads race real failures and recoveries.
        let mut st = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..2 {
            let site = SiteId((next(&mut st) % total_sites as u64) as u32);
            let down = 150 + next(&mut st) % 500;
            let up = down + 200 + next(&mut st) % 600;
            c.sim_mut().schedule_crash(Time(down), site);
            c.sim_mut().schedule_recover(Time(up), site);
        }

        // Interleave snapshot reads with the running schedule: two
        // sessions, each probing a couple of items per wave.
        let probe_items: Vec<ItemId> = (0..shards)
            .flat_map(|s| c.map().items_of(ShardId(s)).into_iter().take(2))
            .collect();
        let mut sessions = [c.open_session(), c.open_session()];
        let mut last_seen: Vec<BTreeMap<ItemId, Version>> = vec![BTreeMap::new(), BTreeMap::new()];
        for wave in 1..=12u64 {
            let t = wave * 120;
            if c.now() < Time(t) {
                c.run_until(Time(t));
            }
            for (s, session) in sessions.iter_mut().enumerate() {
                for &item in &probe_items {
                    let r = c.snapshot_read(session, item);
                    match r {
                        ReadResult::Success { version, value } => {
                            // Property 1: the value is initial or was
                            // committed *before* this read answered.
                            if value != 0 {
                                let h = writes
                                    .get(&item)
                                    .and_then(|m| m.get(&value))
                                    .unwrap_or_else(|| {
                                        panic!(
                                            "seed {seed}: read of {item:?} returned {value}, \
                                             which no transaction ever wrote"
                                        )
                                    });
                                assert_eq!(
                                    c.decision(h),
                                    Some(Decision::Commit),
                                    "seed {seed}: read of {item:?} observed value {value} of \
                                     a transaction not committed at read time"
                                );
                            }
                            // Property 2: per session per item, versions
                            // never regress.
                            if let Some(&prev) = last_seen[s].get(&item) {
                                assert!(
                                    version >= prev,
                                    "seed {seed}: session {s} saw {item:?} go backwards \
                                     ({prev:?} -> {version:?})"
                                );
                            }
                            last_seen[s].insert(item, version);
                        }
                        // A crashed round-robin coordinator can eat a
                        // probe; availability is e17's claim, not this
                        // test's.
                        ReadResult::Unavailable => {}
                        ReadResult::Pending => panic!("blocking read returned Pending"),
                    }
                }
            }
        }

        // The schedule itself stays sound under the crashes.
        for _ in 0..50 {
            if c.run_to_quiescence(10_000_000).drained() {
                break;
            }
        }
        assert_eq!(c.atomicity_violations(), vec![], "seed {seed}");
        assert_eq!(c.engine_violations(), vec![], "seed {seed}");
    }
}
