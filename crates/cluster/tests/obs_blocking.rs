//! Observability acceptance tests (ISSUE 6): the blocking-window
//! measurement against a deterministic crash schedule.
//!
//! 1. **Happy path** — no failures: every transaction commits and no
//!    site ever declares itself blocked, so the blocked-window
//!    histogram stays empty even though copies were pinned during the
//!    vote rounds.
//! 2. **Crashed quorum** — the coordinator and one participant crash
//!    right after the vote round starts; the lone survivor has voted
//!    (pinned its copies) but cannot assemble any termination quorum,
//!    so it declares blocked (rule 5) and stays pinned until the
//!    recovered sites terminate the transaction. The measured window
//!    must equal the virtual-time gap between the `Blocked` declaration
//!    and the `DecisionApplied` event in the recorded timeline, and it
//!    must span the outage.
//! 3. **Observation is passive** — the same schedule with the observer
//!    on and off reaches identical decisions, and two observed runs
//!    render identical metric snapshots.

use qbc_cluster::{ClusterConfig, ObsConfig, ShardId, SimCluster};
use qbc_core::{Decision, ProtocolKind, WriteSet};
use qbc_obs::EventKind;
use qbc_simnet::{Duration, SiteId, Time};
use std::collections::BTreeMap;

/// One shard of three sites, one vote per copy, r = w = 2: a single
/// crash is survivable, two crashes leave no termination quorum.
fn config(protocol: ProtocolKind, seed: u64) -> ClusterConfig {
    ClusterConfig {
        shards: 1,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 8,
        read_quorum: 2,
        write_quorum: 2,
        protocol,
        t_bound: Duration(10),
        seed,
        ..ClusterConfig::default()
    }
}

#[test]
fn happy_path_commits_with_zero_blocked_window() {
    let mut cluster =
        SimCluster::new(config(ProtocolKind::QuorumCommit2, 1).with_obs(ObsConfig::on()));
    let items = cluster.map().items_of(ShardId(0));
    let mut handles = Vec::new();
    for k in 0..6u64 {
        // Disjoint single-item writesets: no lock conflicts, nothing to
        // abort.
        let ws = WriteSet::new([(items[k as usize], 100 + k as i64)]);
        handles.push(cluster.submit_at(Time(10 + k * 40), ws));
    }
    let q = cluster.run_to_quiescence(5_000_000);
    assert!(q.drained(), "cluster must quiesce, got {q:?}");
    for h in &handles {
        assert_eq!(cluster.decision(h), Some(Decision::Commit));
    }

    let obs = cluster.obs().expect("observer was enabled").clone();
    // No failure ever forced the termination protocol into rule 5, so
    // no blocked window may be recorded...
    assert_eq!(obs.blocked_window().count(), 0);
    // ...even though the vote rounds did pin copies for a while.
    assert!(obs.pin_time().count() > 0, "votes must have pinned copies");
    let phases = obs.phase_hists();
    assert_eq!(phases.commit.count(), handles.len() as u64);
    assert!(obs.msgs_sent() > 0);
    assert!(obs.wal_forces() > 0);
    assert!(obs.dumps().is_empty(), "nothing crashed, nothing to dump");
}

#[test]
fn crashed_quorum_blocks_and_the_window_matches_the_event_timeline() {
    let mut cfg = config(ProtocolKind::QuorumCommit2, 2).with_obs(ObsConfig::on());
    // Plenty of ring for the whole scenario: the cross-check below
    // replays the full event timeline.
    cfg.obs.ring_capacity = 4096;
    let mut cluster = SimCluster::new(cfg);
    let items = cluster.map().items_of(ShardId(0));
    let h = cluster.submit_at(Time(10), WriteSet::new([(items[0], 7), (items[1], 8)]));

    // Coordinator and one participant die right after the vote round
    // starts; the survivor alone musters 1 < w = 2 votes, so every
    // termination attempt it runs ends in rule 5 (blocked).
    cluster.sim_mut().schedule_crash(Time(12), SiteId(0));
    cluster.sim_mut().schedule_crash(Time(12), SiteId(1));
    cluster.sim_mut().schedule_recover(Time(600), SiteId(0));
    cluster.sim_mut().schedule_recover(Time(650), SiteId(1));

    let q = cluster.run_to_quiescence(10_000_000);
    assert!(q.drained(), "cluster must quiesce, got {q:?}");
    assert!(
        cluster.decision(&h).is_some(),
        "the recovered quorum must terminate the transaction"
    );
    assert_eq!(cluster.atomicity_violations(), vec![]);

    let obs = cluster.obs().expect("observer was enabled").clone();
    let windows = obs.blocked_window();
    assert!(
        windows.count() >= 1,
        "the survivor must have declared blocked"
    );

    // Cross-check against the recorded timeline: per site, a window is
    // the span from the first `Blocked` declaration to the
    // `DecisionApplied` that closed it.
    let mut blocked_at: BTreeMap<u32, u64> = BTreeMap::new();
    let mut expected_sum = 0u64;
    let mut expected_count = 0u64;
    for e in obs.events() {
        match e.kind {
            EventKind::Blocked if e.txn == Some(h.txn) => {
                blocked_at.entry(e.site.0).or_insert(e.at.0);
            }
            EventKind::DecisionApplied { .. } if e.txn == Some(h.txn) => {
                if let Some(b) = blocked_at.remove(&e.site.0) {
                    expected_sum += e.at.0 - b;
                    expected_count += 1;
                }
            }
            _ => {}
        }
    }
    assert_eq!(
        windows.count(),
        expected_count,
        "window count diverges from timeline"
    );
    assert_eq!(
        windows.sum(),
        expected_sum,
        "window ticks diverge from timeline"
    );
    // The schedule keeps the quorum dead until t = 600, so the window
    // must span most of the outage (declared after the vote at ~t 10+,
    // closed only once the recovered sites re-terminated).
    assert!(
        windows.max() >= Duration(500),
        "window {:?} should span the outage",
        windows.max()
    );
    // The injected crashes stored flight-recorder dumps.
    assert!(
        obs.dumps()
            .iter()
            .any(|(reason, _)| reason.contains("crash")),
        "crash should have auto-dumped the flight recorder"
    );
}

#[test]
fn observer_is_passive_and_snapshots_are_deterministic() {
    let run = |observed: bool| {
        let mut cfg = config(ProtocolKind::QuorumCommit1, 3);
        if observed {
            cfg = cfg.with_obs(ObsConfig::on());
        }
        let mut cluster = SimCluster::new(cfg);
        let items = cluster.map().items_of(ShardId(0));
        let mut handles = Vec::new();
        for k in 0..8u64 {
            // Overlapping writesets: some no-wait aborts in the mix.
            let a = items[(k % 4) as usize];
            let b = items[((k + 1) % 4) as usize];
            handles.push(cluster.submit_at(
                Time(10 + k * 15),
                WriteSet::new([(a, k as i64), (b, -(k as i64))]),
            ));
        }
        cluster.sim_mut().schedule_crash(Time(60), SiteId(2));
        cluster.sim_mut().schedule_recover(Time(300), SiteId(2));
        let q = cluster.run_to_quiescence(10_000_000);
        assert!(q.drained());
        let decisions: Vec<Option<Decision>> =
            handles.iter().map(|h| cluster.decision(h)).collect();
        let snapshot = cluster.obs().is_some().then(|| cluster.metrics_json());
        (decisions, snapshot)
    };

    let (plain, none) = run(false);
    let (observed_a, snap_a) = run(true);
    let (observed_b, snap_b) = run(true);
    assert_eq!(none, None);
    assert_eq!(
        plain, observed_a,
        "observation changed the schedule's decisions"
    );
    assert_eq!(observed_a, observed_b);
    let snap_a = snap_a.expect("observed run renders a snapshot");
    assert_eq!(
        Some(&snap_a),
        snap_b.as_ref(),
        "metric snapshots diverge across identical runs"
    );
    assert!(snap_a.contains("\"qbc_blocked_window_ticks\""), "{snap_a}");
    assert!(snap_a.contains("\"qbc_shard_submitted_total\""), "{snap_a}");
}
