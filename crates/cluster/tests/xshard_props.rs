//! Property tests for cross-shard commit: random multi-shard writesets
//! under random crash schedules must (a) terminate every shard of a
//! transaction the same way and (b) leave every site's WAL replaying —
//! after volatile loss — to a state consistent with the decided
//! outcome.

use proptest::prelude::*;
use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{recover_state, Decision, LocalState, WriteSet};
use qbc_simnet::{Duration, SiteId, Time};
use qbc_votes::ItemId;
use std::collections::BTreeMap;

const SHARDS: u32 = 3;
const ITEMS_PER_SHARD: u32 = 8;
const SITES: u32 = SHARDS * 3;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random multi-shard writesets + random crash/recovery schedules ⇒
    /// all shards agree on every transaction's outcome, and WAL replay
    /// (durable records only — exactly what survives volatile loss)
    /// matches it at every site.
    #[test]
    fn random_xshard_load_with_crashes_is_atomic_and_replayable(
        seed in 0u64..10_000,
        writesets in proptest::collection::vec(
            proptest::collection::vec(
                (0u32..SHARDS * ITEMS_PER_SHARD, 0i64..1_000),
                1..=5,
            ),
            3..=8,
        ),
        crashes in proptest::collection::vec(
            (0u32..SITES, 20u64..350),
            0..=2,
        ),
        group_commit in proptest::bool::ANY,
    ) {
        let mut cfg = ClusterConfig {
            shards: SHARDS,
            seed,
            ..ClusterConfig::default()
        };
        if group_commit {
            cfg = cfg.with_group_commit().with_force_latency(Duration(2));
        }
        let mut cluster = SimCluster::new(cfg);
        for (k, pairs) in writesets.iter().enumerate() {
            let ws = WriteSet::new(pairs.iter().map(|&(i, v)| (ItemId(i), v)));
            cluster.submit_at(Time(k as u64 * 45), ws);
        }
        for &(site, at) in &crashes {
            cluster.sim_mut().schedule_crash(Time(at), SiteId(site));
            cluster.sim_mut().schedule_recover(Time(at + 500), SiteId(site));
        }
        let mut drained = false;
        for _ in 0..100 {
            if cluster.run_to_quiescence(5_000_000).drained() {
                drained = true;
                break;
            }
        }
        prop_assert!(drained, "cluster never quiesced (seed {seed})");
        prop_assert!(cluster.atomicity_violations().is_empty());
        prop_assert!(cluster.engine_violations().is_empty());

        // (a) All shards of every transaction agree.
        let mut decided: BTreeMap<_, Decision> = BTreeMap::new();
        for (site, node) in cluster.sim().nodes() {
            for txn in node.known_txns() {
                if let Some(d) = node.decision(txn) {
                    if let Some(prev) = decided.insert(txn, d) {
                        prop_assert_eq!(
                            prev, d,
                            "{:?} decided both ways (last disagreement at {}, seed {})",
                            txn, site, seed
                        );
                    }
                }
            }
        }
        // Every submitted transaction terminated somewhere (crashed
        // sites recovered, so nothing may stay in doubt) — except
        // submissions that never reached a live coordinator.
        let metrics = cluster.metrics();
        prop_assert_eq!(metrics.total_undecided(), 0);

        // (b) WAL replay after volatile loss matches the outcome:
        // `log_records()` iterates durable records only, exactly what a
        // crash at this instant would preserve.
        for (site, node) in cluster.sim().nodes() {
            let recovered = recover_state(node.log_records());
            for (txn, rec) in recovered {
                let wal_decision = match rec.state {
                    LocalState::Committed => Some(Decision::Commit),
                    LocalState::Aborted => Some(Decision::Abort),
                    _ => None,
                };
                if let (Some(w), Some(d)) = (wal_decision, decided.get(&txn)) {
                    prop_assert_eq!(
                        w, *d,
                        "{:?} WAL at {} replays {:?}, cluster decided {:?} (seed {})",
                        txn, site, w, d, seed
                    );
                }
                // A durably committed WAL state implies the cluster
                // decision exists and is commit (commit is never local).
                if wal_decision == Some(Decision::Commit) {
                    prop_assert_eq!(decided.get(&txn), Some(&Decision::Commit));
                }
            }
        }
    }
}
