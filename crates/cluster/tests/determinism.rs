//! Golden-digest determinism regression: a fixed-seed cluster scenario
//! must reproduce the exact same ordered decisions (and decision times)
//! forever. Perf refactors of the hot path (message sharing, event-loop
//! allocation changes) must not perturb the event order; this test
//! pins it.
//!
//! If this test fails after an intentional semantic change (new message
//! round, different timer arithmetic), re-derive the digest by running
//! the scenario with `QBC_PRINT_DIGEST=1` and update the constant —
//! with a commit message explaining *why* the schedule changed.

use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{Decision, ProtocolKind, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::ItemId;

/// The pinned digest of `scenario()` (see module docs for re-deriving).
const GOLDEN_DIGEST: u64 = 0x2bb70a66ca8e2556;

/// The pinned digest of `xshard_scenario()`: the cross-shard (two-layer
/// commit) schedule, pinned the same way. Re-derive with
/// `QBC_PRINT_XSHARD_DIGEST=1`.
const GOLDEN_XSHARD_DIGEST: u64 = 0x9b3c32b97d00abd7;

/// The pinned digest of `paxos_scenario()`: the Paxos Commit engine
/// under a leader crash, pinned the same way. Re-derive with
/// `QBC_PRINT_PAXOS_DIGEST=1`.
const GOLDEN_PAXOS_DIGEST: u64 = 0x71e157fb16e6c888;

fn fnv1a(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic mixed scenario: two shards under load, a crash and
/// recovery mid-stream (exercising the termination/election paths), no
/// RNG outside the seeded simulator.
fn scenario() -> u64 {
    let cfg = ClusterConfig {
        shards: 2,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 12,
        seed: 42,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(cfg);
    // Site 1 (shard 0) fails under load and comes back.
    cluster.sim_mut().schedule_crash(Time(120), SiteId(1));
    cluster.sim_mut().schedule_recover(Time(700), SiteId(1));

    let per_shard = 12u64;
    for i in 0..48u64 {
        let shard = (i % 2) as u32;
        let base = shard as u64 * per_shard;
        let a = ItemId((base + i % per_shard) as u32);
        let b = ItemId((base + (i * 5 + 1) % per_shard) as u32);
        let ws = if a == b {
            WriteSet::new([(a, i as i64)])
        } else {
            WriteSet::new([(a, i as i64), (b, (i * 31) as i64)])
        };
        cluster.submit_at(Time(i * 17), ws);
    }
    for _ in 0..50 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            break;
        }
    }

    let mut digest = 0xcbf29ce484222325u64;
    let handles: Vec<_> = cluster.handles().to_vec();
    for h in &handles {
        let d = match cluster.decision(h) {
            Some(Decision::Commit) => 1u64,
            Some(Decision::Abort) => 2,
            None => 3,
        };
        let at = cluster
            .sim()
            .node(h.coordinator)
            .decided_at(h.txn)
            .map_or(0, |t| t.0);
        digest = fnv1a(digest, h.txn.0);
        digest = fnv1a(digest, d);
        digest = fnv1a(digest, at);
    }
    digest = fnv1a(digest, cluster.now().0);
    digest = fnv1a(digest, cluster.sim().events_processed());
    digest
}

/// A deterministic *cross-shard* scenario: three shards, a mixed
/// single/multi-shard workload, a crash and recovery of the busiest
/// cross-shard coordinator site mid-stream (exercising the top-level
/// presumed-abort/re-announce and outcome-discovery paths).
fn xshard_scenario() -> u64 {
    let cfg = ClusterConfig {
        shards: 3,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 8,
        seed: 7,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(cfg);
    cluster.sim_mut().schedule_crash(Time(150), SiteId(0));
    cluster.sim_mut().schedule_recover(Time(800), SiteId(0));

    for i in 0..36u64 {
        let ws = match i % 3 {
            // Single-shard filler.
            0 => WriteSet::new([(ItemId(((i / 3) % 24) as u32), i as i64)]),
            // Two-shard: one item on shard (i%3 derived), one on the next.
            1 => {
                let a = (i % 8) as u32;
                let b = 8 + ((i * 3) % 8) as u32;
                WriteSet::new([(ItemId(a), i as i64), (ItemId(b), (i * 7) as i64)])
            }
            // Three-shard.
            _ => WriteSet::new([
                (ItemId((i % 8) as u32), i as i64),
                (ItemId(8 + ((i + 2) % 8) as u32), (i * 11) as i64),
                (ItemId(16 + ((i + 5) % 8) as u32), (i * 13) as i64),
            ]),
        };
        cluster.submit_at(Time(i * 23), ws);
    }
    for _ in 0..50 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            break;
        }
    }

    let mut digest = 0xcbf29ce484222325u64;
    let handles: Vec<_> = cluster.handles().to_vec();
    for h in &handles {
        let d = match cluster.decision(h) {
            Some(Decision::Commit) => 1u64,
            Some(Decision::Abort) => 2,
            None => 3,
        };
        let at = cluster
            .sim()
            .node(h.coordinator)
            .decided_at(h.txn)
            .map_or(0, |t| t.0);
        digest = fnv1a(digest, h.txn.0);
        digest = fnv1a(digest, d);
        digest = fnv1a(digest, at);
    }
    digest = fnv1a(digest, cluster.now().0);
    digest = fnv1a(digest, cluster.sim().events_processed());
    digest
}

/// A deterministic Paxos Commit scenario: one shard of three co-located
/// acceptors under mixed load, the ballot-0 leader site crashing
/// mid-stream and recovering (exercising Phase-1 recovery candidacy,
/// adopted-batch re-proposal, and the decided-site 1a answer).
fn paxos_scenario() -> u64 {
    let cfg = ClusterConfig {
        shards: 1,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 12,
        protocol: ProtocolKind::PaxosCommit,
        seed: 1988,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(cfg);
    cluster.sim_mut().schedule_crash(Time(110), SiteId(0));
    cluster.sim_mut().schedule_recover(Time(750), SiteId(0));

    for i in 0..32u64 {
        let a = ItemId((i % 12) as u32);
        let b = ItemId(((i * 7 + 3) % 12) as u32);
        let ws = if a == b {
            WriteSet::new([(a, i as i64)])
        } else {
            WriteSet::new([(a, i as i64), (b, (i * 19) as i64)])
        };
        cluster.submit_at(Time(i * 21), ws);
    }
    for _ in 0..50 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            break;
        }
    }

    let mut digest = 0xcbf29ce484222325u64;
    let handles: Vec<_> = cluster.handles().to_vec();
    for h in &handles {
        let d = match cluster.decision(h) {
            Some(Decision::Commit) => 1u64,
            Some(Decision::Abort) => 2,
            None => 3,
        };
        let at = cluster
            .sim()
            .node(h.coordinator)
            .decided_at(h.txn)
            .map_or(0, |t| t.0);
        digest = fnv1a(digest, h.txn.0);
        digest = fnv1a(digest, d);
        digest = fnv1a(digest, at);
    }
    digest = fnv1a(digest, cluster.now().0);
    digest = fnv1a(digest, cluster.sim().events_processed());
    digest
}

#[test]
fn fixed_seed_scenario_matches_golden_digest() {
    let digest = scenario();
    if std::env::var("QBC_PRINT_DIGEST").is_ok() {
        panic!("digest = {digest:#x}");
    }
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "event schedule changed: got {digest:#x}, pinned {GOLDEN_DIGEST:#x}. \
         A perf refactor must be schedule-preserving; see module docs."
    );
}

#[test]
fn scenario_is_self_consistent_across_two_runs() {
    assert_eq!(scenario(), scenario(), "same-process nondeterminism");
}

#[test]
fn fixed_seed_xshard_scenario_matches_golden_digest() {
    let digest = xshard_scenario();
    if std::env::var("QBC_PRINT_XSHARD_DIGEST").is_ok() {
        panic!("xshard digest = {digest:#x}");
    }
    assert_eq!(
        digest, GOLDEN_XSHARD_DIGEST,
        "cross-shard event schedule changed: got {digest:#x}, pinned \
         {GOLDEN_XSHARD_DIGEST:#x}. A perf refactor must be \
         schedule-preserving; see module docs."
    );
}

#[test]
fn xshard_scenario_is_self_consistent_across_two_runs() {
    assert_eq!(
        xshard_scenario(),
        xshard_scenario(),
        "same-process nondeterminism"
    );
}

#[test]
fn fixed_seed_paxos_scenario_matches_golden_digest() {
    let digest = paxos_scenario();
    if std::env::var("QBC_PRINT_PAXOS_DIGEST").is_ok() {
        panic!("paxos digest = {digest:#x}");
    }
    assert_eq!(
        digest, GOLDEN_PAXOS_DIGEST,
        "Paxos Commit event schedule changed: got {digest:#x}, pinned \
         {GOLDEN_PAXOS_DIGEST:#x}. A perf refactor must be \
         schedule-preserving; see module docs."
    );
}

#[test]
fn paxos_scenario_is_self_consistent_across_two_runs() {
    assert_eq!(
        paxos_scenario(),
        paxos_scenario(),
        "same-process nondeterminism"
    );
}
