//! Cluster quickstart: four client sessions drive concurrent
//! transactions through a two-shard cluster with group commit, then
//! print the live metrics registry.
//!
//! ```text
//! cargo run --example cluster
//! ```

use quorum_commit::cluster::{ClusterConfig, ShardId, SimCluster};
use quorum_commit::core::WriteSet;
use quorum_commit::simnet::{Duration, Time};

fn main() {
    // 1. A two-shard cluster (3 sites each), group commit enabled over
    //    a log device whose force costs 4 ticks.
    let cfg = ClusterConfig {
        seed: 42,
        force_latency: Duration(4),
        ..Default::default()
    }
    .with_group_commit();
    let mut cluster = SimCluster::new(cfg);

    // 2. Four sessions each submit six transactions, spread over time,
    //    alternating shards — every fourth one *spans both shards* (a
    //    two-layer commit: the paper's quorum protocol per shard under
    //    a top-level 2PC). Nothing blocks: every submit returns a
    //    handle immediately.
    let mut sessions: Vec<_> = (0..4).map(|_| cluster.open_session()).collect();
    for k in 0..24u64 {
        let shard = ShardId((k % 2) as u32);
        let items = cluster.map().items_of(shard);
        let item = items[(k as usize / 2) % items.len()];
        let ws = if k % 4 == 3 {
            let other = cluster.map().items_of(ShardId(((k + 1) % 2) as u32));
            let far = other[(k as usize / 2 + 5) % other.len()];
            WriteSet::new([(item, 1_000 + k as i64), (far, 2_000 + k as i64)])
        } else {
            WriteSet::new([(item, 1_000 + k as i64)])
        };
        let s = (k as usize) % sessions.len();
        cluster.submit(&mut sessions[s], Time(k * 15), ws);
    }

    // 3. Run the cluster and resolve every session's handles.
    cluster.run_to_quiescence(10_000_000);
    let deadline = cluster.now();
    for session in &mut sessions {
        let outcomes = cluster.await_all(session, deadline);
        let committed = outcomes
            .iter()
            .filter(|(_, d)| d.map(|x| x == quorum_commit::core::Decision::Commit) == Some(true))
            .count();
        println!(
            "session {}: {}/{} committed",
            session.id,
            committed,
            outcomes.len()
        );
        for (h, _) in &outcomes {
            assert!(cluster.status(h).is_resolved(), "{h:?} unresolved");
        }
    }

    // 4. No transaction may terminate inconsistently.
    assert!(cluster.atomicity_violations().is_empty());
    assert!(cluster.engine_violations().is_empty());

    // 5. The live metrics registry.
    println!("\n{}", cluster.metrics());
    let m = cluster.metrics();
    println!(
        "group commit batched {:.1} records per force on shard0",
        m.shard(ShardId(0)).records_per_force()
    );
    assert_eq!(m.total_undecided(), 0);
    println!("cluster quickstart OK");
}
