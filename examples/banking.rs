//! A replicated banking workload: three accounts, each replicated at
//! four of six branch sites, transfers committed under QC2 + TP2 while
//! a partition cuts the network in half mid-traffic.
//!
//! Demonstrates the paper's end goal: after the termination protocol
//! resolves in-flight transfers, the surviving quorum side keeps
//! serving reads and writes; no transfer is half-applied anywhere.
//!
//! ```text
//! cargo run --example banking
//! ```

use quorum_commit::core::{Decision, ProtocolKind, TxnId, WriteSet};
use quorum_commit::db::{ReadResult, SiteNode};
use quorum_commit::simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use quorum_commit::votes::{analyze, CatalogBuilder, ItemId};

const ALICE: ItemId = ItemId(0);
const BOB: ItemId = ItemId(1);
const CAROL: ItemId = ItemId(2);

fn main() {
    // Accounts replicated at 4 of 6 branches each, r=2, w=3.
    let catalog = CatalogBuilder::new()
        .item(ALICE, "alice")
        .copies_at([SiteId(0), SiteId(1), SiteId(2), SiteId(3)])
        .quorums(2, 3)
        .item(BOB, "bob")
        .copies_at([SiteId(2), SiteId(3), SiteId(4), SiteId(5)])
        .quorums(2, 3)
        .item(CAROL, "carol")
        .copies_at([SiteId(0), SiteId(1), SiteId(4), SiteId(5)])
        .quorums(2, 3)
        .build()
        .expect("valid catalog");

    // Every account starts with 100 units.
    let nodes: Vec<(SiteId, SiteNode)> = sites(6)
        .into_iter()
        .map(|s| {
            let cfg = quorum_commit::db::NodeConfig::new(s, catalog.clone(), Duration(10));
            (s, SiteNode::new(cfg, |_| 100))
        })
        .collect();
    let mut sim: Sim<SiteNode> = Sim::new(
        SimConfig {
            seed: 2024,
            delay: DelayModel::uniform(Duration(2), Duration(10)),
            record_trace: false,
        },
        nodes,
    );

    // Transfers are write transactions carrying the *new balances*
    // (values computed by the client from quorum reads; sequential here).
    // t=0:    alice -> bob, 30    (alice 70, bob 130)
    // t=300:  bob -> carol, 50    (bob 80, carol 150)
    // t=600:  partition {0,1,2,3} | {4,5} strikes...
    // t=590:  ...while carol -> alice 20 is in flight.
    sim.schedule_call(Time(0), SiteId(0), |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(1),
            WriteSet::new([(ALICE, 70), (BOB, 130)]),
            ProtocolKind::QuorumCommit2,
        );
    });
    sim.schedule_call(Time(300), SiteId(2), |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(2),
            WriteSet::new([(BOB, 80), (CAROL, 150)]),
            ProtocolKind::QuorumCommit2,
        );
    });
    sim.schedule_call(Time(590), SiteId(4), |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(3),
            WriteSet::new([(CAROL, 130), (ALICE, 90)]),
            ProtocolKind::QuorumCommit2,
        );
    });
    sim.schedule_partition(
        Time(600),
        vec![
            vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)],
            vec![SiteId(4), SiteId(5)],
        ],
    );

    sim.run_until(Time(4_000));

    println!("decisions during the partition:");
    for t in [1u64, 2, 3] {
        let ds: Vec<String> = sim
            .nodes()
            .filter_map(|(s, n)| n.decision(TxnId(t)).map(|d| format!("{s}:{d}")))
            .collect();
        println!(
            "  txn{t}: {}",
            if ds.is_empty() {
                "blocked".into()
            } else {
                ds.join(" ")
            }
        );
        // Atomicity check: never both commit and abort.
        let set: std::collections::BTreeSet<Decision> = sim
            .nodes()
            .filter_map(|(_, n)| n.decision(TxnId(t)))
            .collect();
        assert!(set.len() <= 1, "transfer {t} half-applied!");
    }

    // Which accounts does the majority side still serve?
    let components: Vec<std::collections::BTreeSet<SiteId>> =
        sim.topology().components().into_iter().collect();
    let report = analyze(&catalog, &components, |site, item| {
        sim.node(site).is_item_locked(item)
    });
    println!("\naccessibility during the partition:\n{report}");

    // Quorum reads from the majority side: bob (copies at s2..s5; s2+s3
    // give r=2 votes, and transfer 2 already committed) succeeds, while
    // alice is pinned by the *in-doubt* transfer 3 — its X-locks at
    // s0..s3 make every copy unavailable, exactly the paper's
    // blocked-transaction availability loss.
    sim.schedule_call(Time(4_000), SiteId(1), |node, ctx| {
        node.start_read(ctx, 7, BOB);
        node.start_read(ctx, 8, ALICE);
    });
    sim.run_until(Time(4_200));
    match sim.node(SiteId(1)).read_result(7) {
        Some(ReadResult::Success { value, version }) => {
            println!(
                "quorum read of bob on the majority side: {value} (v{})",
                version.0
            );
            assert_eq!(value, 80);
        }
        other => println!("bob read: {other:?}"),
    }
    match sim.node(SiteId(1)).read_result(8) {
        Some(ReadResult::Unavailable) => {
            println!("quorum read of alice: UNAVAILABLE — pinned by the in-doubt transfer");
        }
        other => println!("alice read (unexpected): {other:?}"),
    }

    // Heal; everything terminates; balances must conserve money.
    sim.schedule_heal(Time(4_300));
    sim.run_until(Time(10_000));
    println!("\nafter heal:");
    let mut total = 0i64;
    for (name, item, sample_site) in [
        ("alice", ALICE, SiteId(0)),
        ("bob", BOB, SiteId(2)),
        ("carol", CAROL, SiteId(4)),
    ] {
        let (ver, val) = sim.node(sample_site).item_value(item).expect("copy");
        println!("  {name}: {val} (v{})", ver.0);
        total += val;
    }
    assert_eq!(total, 300, "money must be conserved");
    println!("  total = {total} (conserved)");
}
