//! Narrative walkthrough of the paper's four worked examples, run live
//! on the simulator.
//!
//! ```text
//! cargo run --example paper_examples
//! ```

use quorum_commit::core::{Decision, FaultyMode, ProtocolKind, TxnId};
use quorum_commit::harness::paper::{
    example_catalog, fig3_scenario, fig7_scenario, ITEM_X, ITEM_Y, TR,
};

fn main() {
    let txn = TxnId(TR);

    println!("Scenario (Fig. 3): TR at s1 updates x (copies s1–s4) and y (copies");
    println!("s5–s8), r=2, w=3. The coordinator crashes during the prepare round");
    println!("— only s5 reached PC — and the network splits into");
    println!("G1={{s1,s2,s3}}, G2={{s4,s5}}, G3={{s6,s7,s8}}.\n");

    // ---- Example 1 ----------------------------------------------------
    println!("EXAMPLE 1 — Skeen's quorum protocol [16] (Vc=5, Va=4):");
    let out = fig3_scenario(ProtocolKind::SkeenQuorum, 1).run();
    let v = out.verdict(txn);
    println!(
        "  committed: {:?}  aborted: {:?}  blocked sites: {:?}",
        v.committed, v.aborted, v.undecided
    );
    let report = out.availability(&example_catalog());
    println!(
        "  => every partition is below both Vc and Va; TR blocks everywhere,\n     x readable anywhere: {}, y writable anywhere: {}\n",
        report.readable_somewhere(ITEM_X),
        report.writable_somewhere(ITEM_Y),
    );

    // ---- Example 2 ----------------------------------------------------
    println!("EXAMPLE 2 — 3PC with its site-failure termination protocol:");
    let out = fig3_scenario(ProtocolKind::ThreePhase, 1).run();
    let v = out.verdict(txn);
    println!(
        "  committed: {:?}  aborted: {:?}  consistent: {}",
        v.committed, v.aborted, v.consistent
    );
    println!("  => G2 sees s5's PC and commits; G1/G3 abort — atomicity broken.\n");

    // ---- Example 4 ----------------------------------------------------
    println!("EXAMPLE 4 — the paper's TP1 on the same failure:");
    let out = fig3_scenario(ProtocolKind::QuorumCommit1, 1).run();
    let v = out.verdict(txn);
    let report = out.availability(&example_catalog());
    let x_g1 = report
        .at_site(quorum_commit::simnet::SiteId(2), ITEM_X)
        .unwrap();
    let y_g3 = report
        .at_site(quorum_commit::simnet::SiteId(6), ITEM_Y)
        .unwrap();
    println!(
        "  aborted: {:?}  blocked: {:?}  consistent: {}",
        v.aborted, v.undecided, v.consistent
    );
    println!(
        "  => G1 and G3 muster per-item abort quorums (r=2): TR aborts there;\n     x readable in G1: {}, y writable in G3: {}; only G2 stays blocked.\n",
        x_g1.readable, y_g3.writable
    );

    // ---- Example 3 ----------------------------------------------------
    println!("EXAMPLE 3 — two termination coordinators after a heal (Fig. 7):");
    let correct = fig7_scenario(FaultyMode::Correct, 1).run();
    let faulty = fig7_scenario(FaultyMode::AnswerAcrossWall, 1).run();
    let vc = correct.verdict(txn);
    let vf = faulty.verdict(txn);
    println!(
        "  correct rule:  committed {:?} aborted {:?} consistent {}",
        vc.committed, vc.aborted, vc.consistent
    );
    println!(
        "  faulty rule:   committed {:?} aborted {:?} consistent {}",
        vf.committed, vf.aborted, vf.consistent
    );
    println!("  => a participant in PC must ignore PREPARE-TO-ABORT (and PA must");
    println!("     ignore PREPARE-TO-COMMIT); answering across the wall lets two");
    println!("     coordinators assemble opposite quorums through the same site.");

    assert!(vc.consistent && !vf.consistent);
    assert_eq!(
        out.sim
            .nodes()
            .filter(|(_, n)| n.decision(txn) == Some(Decision::Abort))
            .count(),
        5
    );
    println!("\nall four examples reproduced.");
}
