//! Quickstart: a five-site replicated database committing one
//! transaction under the paper's QC2 + TP2 protocol.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quorum_commit::core::{ProtocolKind, TxnId, WriteSet};
use quorum_commit::db::{build_cluster, SiteNode};
use quorum_commit::simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use quorum_commit::votes::{CatalogBuilder, ItemId};

fn main() {
    // 1. Describe the replicated data: one item `x`, a copy at each of
    //    five sites, one vote per copy, majority quorums (r=3, w=3).
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(5))
        .majority()
        .build()
        .expect("valid catalog");

    // 2. Build one database node per site. T (the longest end-to-end
    //    delay) is 10 ticks; protocol timeouts derive from it.
    let nodes = build_cluster(sites(5), &catalog, Duration(10), |cfg| cfg);

    // 3. Put the nodes on the deterministic simulator.
    let mut sim: Sim<SiteNode> = Sim::new(
        SimConfig {
            seed: 42,
            delay: DelayModel::uniform(Duration(2), Duration(10)),
            record_trace: true,
        },
        nodes,
    );

    // 4. A client submits a transaction at site 0: write x := 7 under
    //    the paper's quorum commit protocol 2 (with termination
    //    protocol 2 standing by, should anything fail).
    sim.schedule_call(Time(0), SiteId(0), |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(1),
            WriteSet::new([(ItemId(0), 7)]),
            ProtocolKind::QuorumCommit2,
        );
    });

    // 5. Run to quiescence and inspect.
    sim.run_to_quiescence(100_000);

    println!("decisions:");
    for (site, node) in sim.nodes() {
        println!(
            "  {site}: {:?}, x = {:?}",
            node.decision(TxnId(1)),
            node.item_value(ItemId(0))
        );
    }
    println!("\nnetwork: {}", sim.stats());
    let all_committed = sim
        .nodes()
        .all(|(_, n)| n.decision(TxnId(1)) == Some(quorum_commit::core::Decision::Commit));
    assert!(all_committed, "failure-free run must commit everywhere");
    println!("all five sites committed x := 7 — quickstart OK");
}
