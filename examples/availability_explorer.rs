//! Availability explorer: sweep partition severity and compare how much
//! of the database each commit/termination protocol keeps accessible —
//! a compact, runnable version of experiment E8.
//!
//! ```text
//! cargo run --release --example availability_explorer
//! ```

use quorum_commit::core::ProtocolKind;
use quorum_commit::harness::montecarlo::{sweep, MonteCarloConfig};
use quorum_commit::harness::table::Table;

fn main() {
    println!("Availability under coordinator crash + k-way partition");
    println!("8 sites, 2 items x 4 copies, r=2 w=3, 120 random schedules per cell\n");

    let runs = 120;
    let mut readable = Table::new(&["k", "2PC", "3PC", "Skeen-QC", "QC1+TP1", "QC2+TP2"]);
    let mut blocked = Table::new(&["k", "2PC", "3PC", "Skeen-QC", "QC1+TP1", "QC2+TP2"]);
    for k in [1usize, 2, 3, 4] {
        let cfg = MonteCarloConfig {
            components: k,
            ..Default::default()
        };
        let mut r_cells = vec![format!("{k}")];
        let mut b_cells = vec![format!("{k}")];
        for p in ProtocolKind::ALL {
            let a = sweep(p, &cfg, runs);
            r_cells.push(format!("{:.3}", a.mean_readable));
            b_cells.push(format!("{:.0}%", a.blocked_rate * 100.0));
        }
        readable.row_strings(r_cells);
        blocked.row_strings(b_cells);
    }
    println!("mean fraction of (partition, item) pairs readable after termination:");
    println!("{readable}");
    println!("fraction of runs with some participant still blocked:");
    println!("{blocked}");
    println!("(3PC never blocks — but see E8: it pays with atomicity violations)");
}
