//! Robustness beyond the paper's worked examples: random message loss,
//! read-one-write-all quorum specializations, mixed protocols in one
//! cluster, and repeated partition churn.

use quorum_commit::core::{Decision, ProtocolKind, TxnId, WriteSet};
use quorum_commit::harness::scenario::{Fault, Scenario};
use quorum_commit::simnet::{sites, SiteId, Time};
use quorum_commit::votes::{Catalog, CatalogBuilder, ItemId};

fn majority_catalog(n: u32) -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(n))
        .majority()
        .build()
        .unwrap()
}

/// Lost messages are part of the paper's fault model: with 15% random
/// loss and the re-entrant termination protocol, transactions still
/// terminate consistently (and, with retries, completely).
#[test]
fn random_message_loss_never_breaks_atomicity() {
    for seed in 0..15u64 {
        let mut s = Scenario::new("loss", majority_catalog(6), sites(6))
            .submit(
                Time(0),
                SiteId(0),
                1,
                WriteSet::new([(ItemId(0), 9)]),
                ProtocolKind::QuorumCommit1,
            )
            .fault(Time(1), Fault::SetLoss(0.15));
        s.seed = seed;
        s.run_until = Time(20_000);
        let out = s.run();
        let v = out.verdict(TxnId(1));
        assert!(v.consistent, "seed {seed}: {v:?}");
        assert!(
            v.undecided.is_empty(),
            "seed {seed}: loss must not block forever with retries: {v:?}"
        );
    }
}

/// §5: "The idea can be generalized to work with other
/// partition-processing strategies." Read-one/write-all is the extreme
/// quorum assignment (r = 1, w = v): TP1's abort quorum needs just one
/// unlocked copy of some item, so *any* partition with any copy can
/// abort an undecided transaction — while commits require every copy.
#[test]
fn rowa_specialization_terminates_any_partition_with_a_copy() {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(4))
        .read_one_write_all()
        .build()
        .unwrap();
    let s = Scenario::new("rowa", catalog, sites(4))
        .submit(
            Time(0),
            SiteId(0),
            1,
            WriteSet::new([(ItemId(0), 5)]),
            ProtocolKind::QuorumCommit1,
        )
        // Cut off the coordinator before the prepare round, crash it,
        // and split the survivors into singletons.
        .fault(Time(11), Fault::BlockLink(SiteId(0), SiteId(1)))
        .fault(Time(11), Fault::BlockLink(SiteId(0), SiteId(2)))
        .fault(Time(11), Fault::BlockLink(SiteId(0), SiteId(3)))
        .fault(Time(30), Fault::Crash(SiteId(0)))
        .fault(
            Time(30),
            Fault::Partition(vec![vec![SiteId(1)], vec![SiteId(2)], vec![SiteId(3)]]),
        );
    let mut s = s.constant_delays();
    s.run_until = Time(4_000);
    let out = s.run();
    let v = out.verdict(TxnId(1));
    assert!(v.consistent);
    // Every singleton partition holds one copy = r(x) votes: all abort.
    for k in 1..4u32 {
        assert!(
            v.aborted.contains(&SiteId(k)),
            "s{k} should abort under ROWA/TP1: {v:?}"
        );
    }
}

/// Different transactions may run different protocols over the same
/// data concurrently; locks serialize them and each stays atomic.
#[test]
fn mixed_protocols_coexist() {
    let mut s = Scenario::new("mixed", majority_catalog(6), sites(6));
    let protocols = [
        ProtocolKind::TwoPhase,
        ProtocolKind::ThreePhase,
        ProtocolKind::QuorumCommit1,
        ProtocolKind::QuorumCommit2,
    ];
    for (i, p) in protocols.into_iter().enumerate() {
        s = s.submit(
            Time(i as u64 * 200),
            SiteId(i as u32),
            (i + 1) as u64,
            WriteSet::new([(ItemId(0), (i + 1) as i64 * 10)]),
            p,
        );
    }
    s.run_until = Time(5_000);
    let out = s.run();
    for i in 1..=4u64 {
        let v = out.verdict(TxnId(i));
        assert!(v.consistent, "txn {i}: {v:?}");
        assert!(v.undecided.is_empty(), "txn {i}: {v:?}");
    }
    // The last committed value is uniform across all copies.
    let finals: std::collections::BTreeSet<i64> = out
        .sim
        .nodes()
        .filter_map(|(_, n)| n.item_value(ItemId(0)).map(|(_, v)| v))
        .collect();
    assert_eq!(finals.len(), 1, "replicas diverged: {finals:?}");
}

/// Partition churn: repeated split/heal cycles during a commit must
/// never produce mixed decisions, and the final heal lets it terminate.
#[test]
fn partition_churn_is_survivable() {
    for seed in 0..10u64 {
        let mut s = Scenario::new("churn", majority_catalog(5), sites(5)).submit(
            Time(0),
            SiteId(0),
            1,
            WriteSet::new([(ItemId(0), 3)]),
            ProtocolKind::QuorumCommit2,
        );
        s.seed = seed;
        // Three split/heal cycles with different shapes.
        s = s
            .fault(
                Time(12),
                Fault::Partition(vec![
                    vec![SiteId(0), SiteId(1)],
                    vec![SiteId(2), SiteId(3), SiteId(4)],
                ]),
            )
            .fault(Time(400), Fault::Heal)
            .fault(
                Time(500),
                Fault::Partition(vec![
                    vec![SiteId(0), SiteId(3), SiteId(4)],
                    vec![SiteId(1), SiteId(2)],
                ]),
            )
            .fault(Time(900), Fault::Heal)
            .fault(
                Time(1_000),
                Fault::Partition(vec![
                    vec![SiteId(0)],
                    vec![SiteId(1), SiteId(2), SiteId(3), SiteId(4)],
                ]),
            )
            .fault(Time(1_500), Fault::Heal);
        s.run_until = Time(12_000);
        let out = s.run();
        let v = out.verdict(TxnId(1));
        assert!(v.consistent, "seed {seed}: {v:?}");
        assert!(v.undecided.is_empty(), "seed {seed}: {v:?}");
    }
}

/// A transaction whose writeset spans items with disjoint copy sets
/// exercises multi-item quorum counting end to end (the Fig. 3 shape)
/// with commits instead of aborts: no failures, everything lands.
#[test]
fn multi_item_disjoint_copies_commit() {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at([SiteId(0), SiteId(1), SiteId(2)])
        .quorums(2, 2)
        .item(ItemId(1), "y")
        .copies_at([SiteId(3), SiteId(4), SiteId(5)])
        .quorums(2, 2)
        .build()
        .unwrap();
    let mut s = Scenario::new("disjoint", catalog, sites(6)).submit(
        Time(0),
        SiteId(0),
        1,
        WriteSet::new([(ItemId(0), 1), (ItemId(1), 2)]),
        ProtocolKind::QuorumCommit1,
    );
    s.run_until = Time(2_000);
    let out = s.run();
    let v = out.verdict(TxnId(1));
    assert_eq!(v.committed.len(), 6, "{v:?}");
    for (site, n) in out.sim.nodes() {
        for item in [ItemId(0), ItemId(1)] {
            if let Some((_, val)) = n.item_value(item) {
                let expect = if item == ItemId(0) { 1 } else { 2 };
                assert_eq!(val, expect, "{site} {item}");
            }
        }
    }
    let _ = Decision::Commit;
}
