//! Crash-recovery integration tests spanning storage, core and db.

use quorum_commit::core::{Decision, ProtocolKind, TxnId, WriteSet};
use quorum_commit::db::{build_cluster, SiteNode};
use quorum_commit::simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use quorum_commit::votes::{Catalog, CatalogBuilder, ItemId};

fn catalog(n: u32) -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(n))
        .quorums(2, n - 1)
        .build()
        .unwrap()
}

fn sim(n: u32, seed: u64) -> Sim<SiteNode> {
    let nodes = build_cluster(sites(n), &catalog(n), Duration(10), |c| c);
    Sim::new(
        SimConfig {
            seed,
            delay: DelayModel::uniform(Duration(2), Duration(10)),
            record_trace: false,
        },
        nodes,
    )
}

fn begin(sim: &mut Sim<SiteNode>, at: u64, site: u32, txn: u64, p: ProtocolKind) {
    sim.schedule_call(Time(at), SiteId(site), move |node, ctx| {
        node.begin_transaction(ctx, TxnId(txn), WriteSet::new([(ItemId(0), 42)]), p);
    });
}

#[test]
fn coordinator_recovers_and_rejoins_decision() {
    let mut s = sim(5, 3);
    begin(&mut s, 0, 0, 1, ProtocolKind::QuorumCommit1);
    // Coordinator dies mid-protocol and comes back much later; the rest
    // terminate via TP1 and the recovered site must converge to the
    // same outcome through its own termination path.
    s.schedule_crash(Time(18), SiteId(0));
    s.schedule_recover(Time(1_500), SiteId(0));
    s.run_until(Time(8_000));
    let d_rest = s.node(SiteId(1)).decision(TxnId(1));
    assert!(d_rest.is_some(), "survivors must terminate");
    assert_eq!(
        s.node(SiteId(0)).decision(TxnId(1)),
        d_rest,
        "recovered coordinator must converge"
    );
}

#[test]
fn participant_recovers_from_pc_state_and_commits() {
    let mut s = sim(5, 5);
    begin(&mut s, 0, 0, 1, ProtocolKind::ThreePhase);
    // Crash a participant after it likely acked PC (t=35 > prepare
    // delivery), recover later; 3PC commits (ack timeout) and the
    // recovered node must apply the value from its log + decided relay.
    s.schedule_crash(Time(35), SiteId(4));
    s.schedule_recover(Time(600), SiteId(4));
    s.run_until(Time(6_000));
    assert_eq!(
        s.node(SiteId(4)).decision(TxnId(1)),
        Some(Decision::Commit),
        "log: {:?}",
        s.node(SiteId(4)).log_records().collect::<Vec<_>>()
    );
    let (_, v) = s.node(SiteId(4)).item_value(ItemId(0)).unwrap();
    assert_eq!(v, 42);
}

#[test]
fn double_crash_still_converges() {
    let mut s = sim(6, 7);
    begin(&mut s, 0, 0, 1, ProtocolKind::QuorumCommit2);
    s.schedule_crash(Time(15), SiteId(0));
    s.schedule_crash(Time(45), SiteId(3));
    s.schedule_recover(Time(900), SiteId(3));
    s.schedule_recover(Time(1_400), SiteId(0));
    s.run_until(Time(10_000));
    let decisions: Vec<Option<Decision>> = s
        .site_ids()
        .iter()
        .map(|&x| s.node(x).decision(TxnId(1)))
        .collect();
    let set: std::collections::BTreeSet<Decision> = decisions.iter().flatten().copied().collect();
    assert!(set.len() <= 1, "mixed decisions: {decisions:?}");
    assert!(
        decisions.iter().all(|d| d.is_some()),
        "everyone decides after recoveries: {decisions:?}"
    );
}

#[test]
fn recovered_in_doubt_participant_repins_its_locks() {
    let mut s = sim(5, 11);
    begin(&mut s, 0, 0, 1, ProtocolKind::TwoPhase);
    // Isolate the coordinator's commands, crash it for good: classic
    // 2PC blocking. Crash + recover a participant while in doubt.
    for k in 1..5 {
        s.schedule_block_link(Time(11), SiteId(0), SiteId(k));
    }
    s.schedule_crash(Time(30), SiteId(0));
    s.schedule_crash(Time(200), SiteId(2));
    s.schedule_recover(Time(400), SiteId(2));
    s.run_until(Time(3_000));
    // Still in doubt after recovery: the lock must be re-acquired so the
    // item stays inaccessible (the availability-reduction effect).
    assert_eq!(s.node(SiteId(2)).decision(TxnId(1)), None);
    assert!(
        s.node(SiteId(2)).is_item_locked(ItemId(0)),
        "in-doubt transaction must keep its copies pinned after recovery"
    );
}

#[test]
fn two_pc_coordinator_recovery_applies_presumed_abort() {
    // Classic 2PC blocking, then the coordinator recovers *without* a
    // durable decision: presumed abort terminates everyone.
    //
    // Crash the coordinator at t=3: its VOTE-REQs (sent at t=0) are
    // still in flight and will be delivered, but no vote can return
    // (minimum round trip is 4 ticks), so no decision is ever logged.
    let mut s = sim(5, 17);
    begin(&mut s, 0, 0, 1, ProtocolKind::TwoPhase);
    s.schedule_crash(Time(3), SiteId(0));
    // Blocked window: participants voted yes into the void and hold
    // their locks; cooperative termination sees all-W and blocks.
    s.run_until(Time(1_000));
    assert_eq!(s.node(SiteId(1)).decision(TxnId(1)), None);
    assert!(s.node(SiteId(1)).is_item_locked(ItemId(0)));
    s.schedule_recover(Time(1_010), SiteId(0));
    s.run_until(Time(5_000));
    for k in 0..5u32 {
        assert_eq!(
            s.node(SiteId(k)).decision(TxnId(1)),
            Some(Decision::Abort),
            "s{k}: presumed abort must terminate the blocked transaction"
        );
        assert!(!s.node(SiteId(k)).is_item_locked(ItemId(0)));
    }
}

#[test]
fn two_pc_coordinator_recovery_reannounces_a_logged_commit() {
    // The coordinator logs COMMIT, its commands are lost, it crashes:
    // participants block in W. On recovery it must re-announce the
    // decision, and everyone commits (never aborts: the decision was
    // durable).
    let mut s = sim(5, 19);
    begin(&mut s, 0, 0, 1, ProtocolKind::TwoPhase);
    // Block the coordinator's outgoing links after the votes are cast
    // (≤ 2T = 20) so the decision — logged at the coordinator — never
    // reaches the participants before the crash.
    for k in 1..5 {
        s.schedule_block_link(Time(21), SiteId(0), SiteId(k));
    }
    s.schedule_crash(Time(40), SiteId(0));
    s.schedule_recover(Time(1_000), SiteId(0));
    s.run_until(Time(6_000));
    // Whatever the durable decision was, after recovery it must be
    // uniform and total: every site decided the same way.
    let d0 = s.node(SiteId(0)).decision(TxnId(1));
    assert!(d0.is_some());
    for k in 1..5u32 {
        assert_eq!(s.node(SiteId(k)).decision(TxnId(1)), d0, "s{k}");
    }
}

#[test]
fn log_replay_is_idempotent_across_repeated_crashes() {
    let mut s = sim(5, 13);
    begin(&mut s, 0, 0, 1, ProtocolKind::QuorumCommit1);
    s.run_until(Time(500));
    assert_eq!(s.node(SiteId(3)).decision(TxnId(1)), Some(Decision::Commit));
    let value_before = s.node(SiteId(3)).item_value(ItemId(0));
    // Crash and recover the same site repeatedly after the commit.
    for k in 0..3 {
        s.schedule_crash(Time(600 + k * 200), SiteId(3));
        s.schedule_recover(Time(700 + k * 200), SiteId(3));
    }
    s.run_until(Time(2_000));
    assert_eq!(s.node(SiteId(3)).decision(TxnId(1)), Some(Decision::Commit));
    assert_eq!(s.node(SiteId(3)).item_value(ItemId(0)), value_before);
}
