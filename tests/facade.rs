//! Integration tests exercising the public facade (`quorum_commit`)
//! exactly as a downstream user would: build clusters, run paper
//! scenarios, inspect verdicts and availability.

use quorum_commit::core::{FaultyMode, ProtocolKind, TxnId};
use quorum_commit::harness::latency::measure;
use quorum_commit::harness::paper::{
    example_catalog, fig3_scenario, fig7_scenario, ITEM_X, ITEM_Y, TR,
};

#[test]
fn example1_skeen_blocks_everywhere() {
    let out = fig3_scenario(ProtocolKind::SkeenQuorum, 1).run();
    let v = out.verdict(TxnId(TR));
    assert!(v.committed.is_empty() && v.aborted.is_empty());
    let report = out.availability(&example_catalog());
    assert!(!report.readable_somewhere(ITEM_X));
    assert!(!report.writable_somewhere(ITEM_Y));
}

#[test]
fn example2_three_pc_splits_the_brain() {
    let out = fig3_scenario(ProtocolKind::ThreePhase, 1).run();
    assert!(!out.verdict(TxnId(TR)).consistent);
}

#[test]
fn example3_wall_rule_matters() {
    assert!(fig7_scenario(FaultyMode::Correct, 1).run().all_consistent());
    assert!(
        !fig7_scenario(FaultyMode::AnswerAcrossWall, 1)
            .run()
            .verdict(TxnId(TR))
            .consistent
    );
}

#[test]
fn example4_tp1_aborts_and_frees_items() {
    let out = fig3_scenario(ProtocolKind::QuorumCommit1, 1).run();
    let v = out.verdict(TxnId(TR));
    assert!(v.consistent);
    assert_eq!(v.aborted.len(), 5, "{v:?}");
    let report = out.availability(&example_catalog());
    assert!(report.readable_somewhere(ITEM_X));
    assert!(report.writable_somewhere(ITEM_Y));
}

#[test]
fn tp2_on_the_fig3_failure_also_terminates_g1_and_g3() {
    // The paper only walks TP1 through Example 4; TP2 reaches the same
    // availability outcome on this scenario (both G1 and G3 hold w(x)
    // resp. w(y) among non-PC sites... G1 = {s2,s3}: votes(x) = 2 < w=3,
    // so TP2's abort rule (w votes of EVERY item) fails — G1 blocks
    // under TP2 while TP1 aborts it: a real difference between the two.
    let out = fig3_scenario(ProtocolKind::QuorumCommit2, 1).run();
    let v = out.verdict(TxnId(TR));
    assert!(v.consistent);
    // G3 = {s6,s7,s8} holds w(y) = 3 votes of y but 0 of x: TP2 cannot
    // abort either. Everything blocks — TP1 and TP2 genuinely differ.
    assert!(
        v.undecided.len() >= 4,
        "TP2 blocks where TP1 aborted: {v:?}"
    );
}

#[test]
fn qc2_failure_free_beats_qc1_on_client_latency() {
    let q1 = measure(ProtocolKind::QuorumCommit1, 6, 2, 5, 0..25);
    let q2 = measure(ProtocolKind::QuorumCommit2, 6, 2, 5, 0..25);
    assert!(q2.coordinator_latency < q1.coordinator_latency);
}

#[test]
fn readme_quickstart_compiles_and_commits() {
    use quorum_commit::core::{Decision, WriteSet};
    use quorum_commit::db::{build_cluster, SiteNode};
    use quorum_commit::simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
    use quorum_commit::votes::{CatalogBuilder, ItemId};

    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(5))
        .majority()
        .build()
        .unwrap();
    let nodes = build_cluster(sites(5), &catalog, Duration(10), |cfg| cfg);
    let mut sim: Sim<SiteNode> = Sim::new(
        SimConfig {
            seed: 42,
            delay: DelayModel::uniform(Duration(2), Duration(10)),
            record_trace: false,
        },
        nodes,
    );
    sim.schedule_call(Time(0), SiteId(0), |node, ctx| {
        node.begin_transaction(
            ctx,
            TxnId(1),
            WriteSet::new([(ItemId(0), 7)]),
            ProtocolKind::QuorumCommit2,
        );
    });
    sim.run_to_quiescence(100_000);
    assert!(sim
        .nodes()
        .all(|(_, n)| n.decision(TxnId(1)) == Some(Decision::Commit)));
}
