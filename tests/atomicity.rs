//! Cross-crate property tests: atomic commitment under randomized
//! failure schedules (the paper's Theorem 1, empirically).

use proptest::prelude::*;
use quorum_commit::core::{ProtocolKind, Transition, TxnId};
use quorum_commit::harness::montecarlo::{random_failure_scenario, MonteCarloConfig};

/// Protocols that must never terminate inconsistently, no matter the
/// failure schedule (2PC may block; Skeen/QC1/QC2 may block less).
const SAFE: [ProtocolKind; 4] = [
    ProtocolKind::TwoPhase,
    ProtocolKind::SkeenQuorum,
    ProtocolKind::QuorumCommit1,
    ProtocolKind::QuorumCommit2,
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    /// Theorem 1: under concurrent site failures and partitioning, all
    /// participants that terminate, terminate the same way.
    #[test]
    fn no_mixed_decisions_under_random_failures(
        seed in 0u64..10_000,
        components in 2usize..5,
        protocol_idx in 0usize..4,
    ) {
        let protocol = SAFE[protocol_idx];
        let cfg = MonteCarloConfig {
            components,
            run_until: 3_000,
            ..Default::default()
        };
        let out = random_failure_scenario(protocol, &cfg, seed).run();
        let v = out.verdict(TxnId(1));
        prop_assert!(
            v.consistent,
            "{} terminated inconsistently (seed {seed}): {v:?}",
            protocol.name()
        );
        for (site, node) in out.sim.nodes() {
            prop_assert!(
                node.violations().is_empty(),
                "violations at {site}: {:?}",
                node.violations()
            );
        }
    }

    /// Fig. 6 conformance: every state transition taken in randomized
    /// runs is legal — in particular no participant ever crosses
    /// between PC and PA.
    #[test]
    fn all_transitions_legal_under_random_failures(
        seed in 0u64..10_000,
        components in 1usize..5,
        protocol_idx in 0usize..4,
    ) {
        let protocol = SAFE[protocol_idx];
        let cfg = MonteCarloConfig {
            components,
            run_until: 3_000,
            ..Default::default()
        };
        let out = random_failure_scenario(protocol, &cfg, seed).run();
        for (site, node) in out.sim.nodes() {
            let transitions = node.transitions(TxnId(1));
            for t in transitions {
                prop_assert!(
                    Transition::is_legal(t),
                    "illegal transition {:?} at {site} under {} (seed {seed})",
                    t,
                    protocol.name()
                );
            }
        }
    }

    /// Liveness through healing: when the partition heals, the crashed
    /// coordinator recovers, and retries continue, every participant
    /// eventually decides — consistently. (Coordinator recovery matters
    /// for 2PC: with the coordinator dead forever, 2PC blocks by design
    /// — that is the paper's motivating flaw.)
    #[test]
    fn healing_terminates_every_participant(
        seed in 0u64..10_000,
        protocol_idx in 0usize..4,
    ) {
        let protocol = SAFE[protocol_idx];
        let cfg = MonteCarloConfig {
            components: 3,
            heal_at: Some(1_200),
            recover_at: Some(1_500),
            run_until: 12_000,
            ..Default::default()
        };
        let out = random_failure_scenario(protocol, &cfg, seed).run();
        let v = out.verdict(TxnId(1));
        prop_assert!(v.consistent, "inconsistent after heal: {v:?}");
        prop_assert!(
            v.undecided.is_empty(),
            "{} left {:?} undecided after heal (seed {seed})",
            protocol.name(),
            v.undecided
        );
    }
}

/// 3PC's termination protocol is only safe for site failures: with
/// `components = 1` (crash only, no partition) randomized runs must all
/// stay consistent.
#[test]
fn three_pc_is_safe_without_partitions() {
    let cfg = MonteCarloConfig {
        components: 1,
        crash_coordinator: true,
        run_until: 3_000,
        ..Default::default()
    };
    for seed in 0..60u64 {
        let out = random_failure_scenario(ProtocolKind::ThreePhase, &cfg, seed).run();
        let v = out.verdict(TxnId(1));
        assert!(
            v.consistent,
            "3PC must be safe under pure site failures: {v:?}"
        );
        assert!(
            v.undecided.is_empty(),
            "3PC must be nonblocking under site failures: {v:?}"
        );
    }
}
