//! Docs link check: every relative markdown link in `README.md` and
//! `docs/*.md` must resolve to a file that exists, and every page the
//! docs tree is supposed to contain must be present and non-trivial.
//! Runs in `cargo test` (and as an explicit CI step), so a renamed
//! test file or a dropped docs page breaks the build instead of
//! silently 404ing readers.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `](target)` link targets from markdown.
fn link_targets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = md.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = md[i + 2..].find(')') {
                out.push(md[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn check_file(path: &Path, failures: &mut Vec<String>) {
    let md =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let dir = path.parent().expect("markdown file has a parent");
    for target in link_targets(&md) {
        // External links and pure anchors are out of scope.
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with('#')
        {
            continue;
        }
        // Strip an anchor suffix; resolve relative to the file.
        let file_part = target.split('#').next().unwrap_or(&target);
        if file_part.is_empty() {
            continue;
        }
        let resolved = dir.join(file_part);
        if !resolved.exists() {
            failures.push(format!(
                "{}: broken link `{target}` (missing {})",
                path.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn all_relative_doc_links_resolve() {
    let root = repo_root();
    let mut failures = Vec::new();
    check_file(&root.join("README.md"), &mut failures);
    let docs = root.join("docs");
    assert!(docs.is_dir(), "docs/ tree is missing");
    for entry in std::fs::read_dir(&docs).expect("read docs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            check_file(&path, &mut failures);
        }
    }
    assert!(
        failures.is_empty(),
        "broken docs links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn the_docs_tree_is_complete() {
    let docs = repo_root().join("docs");
    for page in [
        "architecture.md",
        "wal-format.md",
        "testing.md",
        "observability.md",
        "model-checking.md",
        "async-runtime.md",
    ] {
        let path = docs.join(page);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("docs page {page} missing: {e}"));
        assert!(
            text.len() > 2000,
            "docs page {page} looks like a stub ({} bytes)",
            text.len()
        );
    }
}

#[test]
fn docs_references_to_code_paths_exist() {
    // The docs name concrete test files and binaries as evidence;
    // keep those paths honest.
    let root = repo_root();
    for rel in [
        "crates/cluster/tests/determinism.rs",
        "crates/cluster/tests/xshard_faults.rs",
        "crates/cluster/tests/file_wal.rs",
        "crates/cluster/tests/xshard_props.rs",
        "crates/core/src/wal_codec.rs",
        "crates/cluster/tests/obs_blocking.rs",
        "crates/cluster/tests/model_check.rs",
        "crates/cluster/tests/mc_regressions.rs",
        "crates/cluster/tests/xshard_discovery.rs",
        "crates/cluster/examples/mc_probe.rs",
        "crates/mc/src/lib.rs",
        "crates/cluster/src/mc_harness.rs",
        "crates/core/tests/rule_safety.rs",
        "crates/bench/src/bin/e13_cluster_throughput.rs",
        "crates/bench/src/bin/e14_sim_throughput.rs",
        "crates/bench/src/bin/e15_file_wal.rs",
        "crates/bench/src/bin/e16_protocol_metrics.rs",
        "crates/bench/src/bin/e17_read_availability.rs",
        "crates/bench/src/bin/e18_open_loop.rs",
        "crates/cluster/tests/snapshot_reads.rs",
        "crates/db/tests/read_tables.rs",
        "crates/reactor/src/poller.rs",
        "crates/reactor/src/frame.rs",
        "crates/reactor/src/wire.rs",
        "crates/cluster/tests/reactor.rs",
        "crates/harness/src/open_loop.rs",
        "BENCH_e14.json",
        "BENCH_e15.json",
        "BENCH_e16.json",
        "BENCH_e16_flightdump.txt",
        "BENCH_e17.json",
        "BENCH_e18.json",
    ] {
        assert!(
            root.join(rel).exists(),
            "docs reference a missing path: {rel}"
        );
    }
}
