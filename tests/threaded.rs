//! Substrate independence: the same `SiteNode` code that runs on the
//! deterministic simulator commits transactions on real OS threads with
//! crossbeam channels (the `simnet::threaded` transport).

use quorum_commit::core::{Decision, ProtocolKind, TxnId, WriteSet};
use quorum_commit::db::{NetMsg, NodeConfig, SiteNode};
use quorum_commit::simnet::threaded::{ThreadedConfig, ThreadedNet};
use quorum_commit::simnet::{sites, Duration, SiteId};
use quorum_commit::votes::{CatalogBuilder, ItemId};

fn cluster(n: u32) -> Vec<(SiteId, SiteNode)> {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(n))
        .majority()
        .build()
        .unwrap();
    sites(n)
        .into_iter()
        .map(|s| {
            // Timer ticks map to milliseconds on the threaded runtime;
            // keep T small so watchdogs stay responsive in test time.
            let cfg = NodeConfig::new(s, catalog.clone(), Duration(20));
            (s, SiteNode::new(cfg, |_| 0))
        })
        .collect()
}

/// Drives a transaction by injecting a `VoteReq`-triggering call: the
/// threaded transport has no `schedule_call`, so we start the
/// transaction through a message the node understands — the coordinator
/// role is exercised by sending the begin request from a test-side
/// "client" via a direct state mutation before spawn.
#[test]
fn threaded_cluster_commits_failure_free() {
    let mut nodes = cluster(5);
    // Start the transaction on the coordinator node *before* spawning:
    // its kickoff actions are buffered as local/self messages and flushed
    // once the event loop starts... simpler: drive it through on_start by
    // wrapping the coordinator node.
    struct Kickoff(SiteNode);
    impl quorum_commit::simnet::Process for Kickoff {
        type Msg = NetMsg;
        type Timer = quorum_commit::db::NodeTimer;
        fn on_start(&mut self, ctx: &mut quorum_commit::simnet::Ctx<'_, NetMsg, Self::Timer>) {
            if self.0.site() == SiteId(0) {
                self.0.begin_transaction(
                    ctx,
                    TxnId(1),
                    WriteSet::new([(ItemId(0), 99)]),
                    ProtocolKind::QuorumCommit2,
                );
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut quorum_commit::simnet::Ctx<'_, NetMsg, Self::Timer>,
            from: SiteId,
            msg: NetMsg,
        ) {
            self.0.on_message(ctx, from, msg);
        }
        fn on_timer(
            &mut self,
            ctx: &mut quorum_commit::simnet::Ctx<'_, NetMsg, Self::Timer>,
            id: quorum_commit::simnet::TimerId,
            t: Self::Timer,
        ) {
            self.0.on_timer(ctx, id, t);
        }
    }

    let wrapped: Vec<(SiteId, Kickoff)> = nodes.drain(..).map(|(s, n)| (s, Kickoff(n))).collect();
    let net = ThreadedNet::spawn(
        ThreadedConfig {
            delay_ms: 1,
            seed: 7,
        },
        wrapped,
    );

    // Real time: the commit needs a handful of 1 ms hops; one second is
    // a generous margin even on loaded CI machines.
    std::thread::sleep(std::time::Duration::from_secs(1));
    let nodes = net.shutdown();
    for (s, k) in &nodes {
        assert_eq!(
            k.0.decision(TxnId(1)),
            Some(Decision::Commit),
            "site {s} must commit on the threaded runtime"
        );
        let (_, v) = k.0.item_value(ItemId(0)).unwrap();
        assert_eq!(v, 99);
    }
}
